package backend

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"tabby/internal/graphdb"
	"tabby/internal/searchindex"
	"tabby/internal/store"
)

func testSnapshot(t *testing.T) *store.Snapshot {
	t.Helper()
	db := graphdb.New()
	a := db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": "com.example.A#run()", "IS_SINK": true})
	b := db.CreateNode([]string{"Method"}, graphdb.Props{"NAME": "com.example.B#call()"})
	if _, err := db.CreateRel("CALL", b, a, nil); err != nil {
		t.Fatal(err)
	}
	db.Freeze()
	return &store.Snapshot{Meta: store.Meta{Name: "unit", Corpus: "hand-built"}, DB: db}
}

func writeSnapshotFile(t *testing.T, snap *store.Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "unit.tsnap")
	if err := store.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	return path
}

// stripIndexSection rewrites a current-format snapshot file as a
// version-2 one: same section framing (4-byte tag, u32 length, payload,
// u32 CRC) minus the trailing "csr3" section, version field rewritten.
// This synthesizes what a pre-v3 build wrote.
func stripIndexSection(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const magicLen = 8 // "TABBYSNP"
	out := append([]byte(nil), data[:magicLen+2]...)
	binary.LittleEndian.PutUint16(out[magicLen:], 2)
	rest := data[magicLen+2:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			t.Fatalf("trailing %d bytes are not a section frame", len(rest))
		}
		tag := string(rest[:4])
		end := 8 + int(binary.LittleEndian.Uint32(rest[4:8])) + 4
		if len(rest) < end {
			t.Fatalf("section %q overruns the file", tag)
		}
		if tag != "csr3" {
			out = append(out, rest[:end]...)
		}
		rest = rest[end:]
	}
	v2 := filepath.Join(t.TempDir(), "v2.tsnap")
	if err := os.WriteFile(v2, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return v2
}

// csr3PayloadOffset walks the section frames and returns the file
// offset of the first byte of the index section's payload.
func csr3PayloadOffset(t *testing.T, data []byte) int {
	t.Helper()
	off := 8 + 2 // magic + version
	for off+8 <= len(data) {
		tag := string(data[off : off+4])
		size := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		if tag == "csr3" {
			if size == 0 {
				t.Fatal("csr3 section is empty")
			}
			return off + 8
		}
		off += 8 + size + 4
	}
	t.Fatal("no csr3 section found")
	return 0
}

// TestOpenPrefersMmap: a current-format snapshot opens as the zero-copy
// backend — metadata and graph stats served without the heap parse,
// the store materialized (once) only when DB() forces it.
func TestOpenPrefersMmap(t *testing.T) {
	if !searchindex.LayoutSupported() {
		t.Skip("host cannot view on-disk index layouts")
	}
	snap := testSnapshot(t)
	path := writeSnapshotFile(t, snap)

	be, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if be.Kind() != KindMmap {
		t.Fatalf("Kind() = %q, want %q", be.Kind(), KindMmap)
	}
	if be.Meta().Name != "unit" || be.Meta().Corpus != "hand-built" {
		t.Errorf("Meta() = %+v", be.Meta())
	}
	if st := be.GraphStats(); st.Nodes != 2 || st.Rels != 1 {
		t.Errorf("GraphStats() = %+v", st)
	}
	if be.Loaded() {
		t.Error("mmap backend must not be heap-loaded before DB()")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if be.MappedBytes() != fi.Size() {
		t.Errorf("MappedBytes() = %d, want file size %d", be.MappedBytes(), fi.Size())
	}

	ix := be.Index()
	if ix == nil || ix.NumNodes() != 2 {
		t.Fatalf("Index() = %v", ix)
	}
	if ix.DB() != nil {
		t.Error("viewed index must have no backing store")
	}

	db, err := be.DB()
	if err != nil {
		t.Fatal(err)
	}
	if !be.Loaded() {
		t.Error("DB() must mark the backend loaded")
	}
	again, err := be.DB()
	if err != nil || again != db {
		t.Error("DB() must memoize the parsed store")
	}
	if ids := db.FindNodes("Method", "NAME", "com.example.A#run()"); len(ids) != 1 {
		t.Errorf("materialized store lookup: %v", ids)
	}
	if err := be.Close(); err != nil {
		t.Errorf("Close() = %v", err)
	}
	// The index stays valid after Close — it aliases the mapping, which
	// Close deliberately keeps alive.
	if ix.NumNodes() != 2 {
		t.Error("index unusable after Close")
	}
}

// TestOpenFallsBackToHeapForPreV3: an older snapshot has nothing to
// serve zero-copy; Open silently parses it onto the heap.
func TestOpenFallsBackToHeapForPreV3(t *testing.T) {
	path := stripIndexSection(t, writeSnapshotFile(t, testSnapshot(t)))
	be, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if be.Kind() != KindMem {
		t.Fatalf("Kind() = %q, want %q", be.Kind(), KindMem)
	}
	if !be.Loaded() || be.MappedBytes() != 0 {
		t.Errorf("heap backend state: loaded=%v mapped=%d", be.Loaded(), be.MappedBytes())
	}
	if st := be.GraphStats(); st.Nodes != 2 || st.Rels != 1 {
		t.Errorf("GraphStats() = %+v", st)
	}
	if be.Index() == nil {
		t.Error("heap backend must compile an index")
	}
}

// TestOpenRejectsCorruptFiles: corruption errors at open on every path
// — a flipped byte in the served sections, garbage, an empty file, and
// a missing file all fail; none fall through to serving bad bytes.
func TestOpenRejectsCorruptFiles(t *testing.T) {
	path := writeSnapshotFile(t, testSnapshot(t))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Flip a byte inside the csr3 payload: the zero-copy open checksums
	// that section before serving anything from it.
	flipped := append([]byte(nil), data...)
	flipped[csr3PayloadOffset(t, data)] ^= 0xff
	if _, err := Open(write("flipped.tsnap", flipped)); err == nil {
		t.Error("flipped index section must error, not fall back")
	}
	if _, err := Open(write("garbage.tsnap", []byte("definitely not a snapshot"))); err == nil {
		t.Error("garbage file must error")
	}
	if _, err := Open(write("empty.tsnap", nil)); err == nil {
		t.Error("empty file must error")
	}
	if _, err := Open(filepath.Join(dir, "missing.tsnap")); err == nil {
		t.Error("missing file must error")
	}
}

// TestFromSnapshotWrapsHeap pins the Mem accessors over an
// already-parsed snapshot.
func TestFromSnapshotWrapsHeap(t *testing.T) {
	snap := testSnapshot(t)
	be := FromSnapshot(snap)
	if be.Kind() != KindMem || !be.Loaded() || be.MappedBytes() != 0 {
		t.Errorf("Mem state: kind=%q loaded=%v mapped=%d", be.Kind(), be.Loaded(), be.MappedBytes())
	}
	db, err := be.DB()
	if err != nil || db != snap.DB {
		t.Error("Mem.DB() must return the wrapped store")
	}
	if be.Snapshot() != snap {
		t.Error("Mem.Snapshot() must return the wrapped snapshot")
	}
	if be.Meta() != snap.Meta {
		t.Errorf("Meta() = %+v", be.Meta())
	}
	if err := be.Close(); err != nil {
		t.Errorf("Close() = %v", err)
	}
}
