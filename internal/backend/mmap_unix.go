//go:build unix

package backend

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapFile maps path read-only. The returned slice aliases the page
// cache; writes to the file after mapping are undefined for readers,
// which is safe here because snapshot writes are atomic renames — an
// open mapping keeps the old inode alive, untouched.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("backend: %s: empty file", path)
	}
	if size > math.MaxInt32 && ^uint(0)>>32 == 0 {
		return nil, fmt.Errorf("backend: %s: %d bytes exceed the 32-bit address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, mmapFlags)
	if err != nil {
		return nil, fmt.Errorf("backend: mmap %s: %w", path, err)
	}
	return data, nil
}

// unmapFile releases a mapping that never escaped openMapped. Errors
// are ignored: the region is read-only and the caller is abandoning it.
func unmapFile(data []byte) {
	_ = syscall.Munmap(data)
}
