package edges

import (
	"fmt"

	"tabby/internal/graphdb"
	"tabby/internal/java"
	"tabby/internal/sortutil"
)

// callResolutionPass adds CALL edges for every non-pruned call site
// (§III-B2 "Precise Call Graph Extraction"), carrying the
// Polluted_Position.
type callResolutionPass struct{}

func (callResolutionPass) Name() string { return ProvPCG }
func (callResolutionPass) Rel() string  { return RelCall }

func (callResolutionPass) Synthesize(h Host, c *Counts) error {
	calls := h.Calls()
	batch := h.Batch()
	for _, key := range sortutil.SortedKeys(calls) {
		callerID, ok := h.NodeByKey(key)
		if !ok {
			return fmt.Errorf("caller %s has no node", key)
		}
		targets := h.ResolvedCallees(key)
		for i, call := range calls[key] {
			if call.Pruned && !h.KeepPrunedCalls() {
				c.PrunedCalls++
				continue
			}
			var m *java.Method
			if targets != nil {
				m = targets[i]
			} else {
				m = h.Hierarchy().ResolveMethod(call.CalleeClass, call.CalleeSub)
			}
			var calleeID graphdb.ID
			if m != nil {
				id, err := h.MethodNode(m)
				if err != nil {
					return err
				}
				calleeID = id
			} else {
				id, err := h.PhantomNode(call.CalleeClass, call.CalleeSub)
				if err != nil {
					return err
				}
				calleeID = id
			}
			batch.CreateRelOwned(RelCall, callerID, calleeID, graphdb.Props{
				PropPollutedPosition: call.PP.Ints(),
				PropInvokeKind:       call.Kind.String(),
				PropStmtIndex:        call.StmtIndex,
				PropInvokeClass:      call.CalleeClass,
			})
			c.CallEdges++
		}
	}
	return nil
}
