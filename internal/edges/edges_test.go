package edges_test

import (
	"reflect"
	"testing"

	"tabby/internal/cpg"
	"tabby/internal/edges"
	"tabby/internal/java"
)

// TestProvenanceCoversAllRelTypes pins the schema contract the rel-type
// exhaustiveness check (scripts/check_reltypes.sh) enforces at the shell
// level: every relationship type has a provenance tag, the vocabulary
// cpg re-exports is exactly the one edges owns, and unknown types map to
// "".
func TestProvenanceCoversAllRelTypes(t *testing.T) {
	all := edges.AllRelTypes()
	want := []string{"ALIAS", "CALL", "DISPATCH", "EXTEND", "HAS", "INTERFACE"}
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("AllRelTypes() = %v, want %v", all, want)
	}
	if !reflect.DeepEqual(cpg.RelTypes(), all) {
		t.Errorf("cpg.RelTypes() = %v diverges from edges.AllRelTypes() = %v", cpg.RelTypes(), all)
	}
	for _, rt := range all {
		if edges.Provenance(rt) == "" {
			t.Errorf("Provenance(%q) = \"\": rel type has no pipeline stage", rt)
		}
	}
	if got := edges.Provenance("NO_SUCH_REL"); got != "" {
		t.Errorf("Provenance(unknown) = %q, want \"\"", got)
	}
	// The cpg aliases must be the same strings, not lookalikes.
	aliases := map[string]string{
		cpg.RelExtend:    edges.RelExtend,
		cpg.RelInterface: edges.RelInterface,
		cpg.RelHas:       edges.RelHas,
		cpg.RelCall:      edges.RelCall,
		cpg.RelAlias:     edges.RelAlias,
		cpg.RelDispatch:  edges.RelDispatch,
	}
	for c, e := range aliases {
		if c != e {
			t.Errorf("cpg re-export %q != edges constant %q", c, e)
		}
	}
	if edges.Provenance(edges.RelDispatch) != edges.ProvSerialization {
		t.Errorf("DISPATCH provenance = %q, want %q", edges.Provenance(edges.RelDispatch), edges.ProvSerialization)
	}
}

// dispatchUniverse builds a hierarchy exercising every derivation rule:
//
//	Base                      (not Serializable, declares readResolve)
//	  └─ Entry  implements Serializable   (inherits Base.readResolve)
//	Plain      implements Serializable    (private readObject, static helper)
//	Handler    implements InvocationHandler, Serializable  (invoke; the interface declaration is a target too)
//	Unrelated                 (readObject, but not Serializable: no target)
func dispatchUniverse(t *testing.T) *java.Hierarchy {
	t.Helper()
	oisParam := []java.Type{java.ClassType("java.io.ObjectInputStream")}

	base := &java.Class{Name: "com.example.Base", Modifiers: java.ModPublic, Super: java.ObjectClass}
	base.AddMethod(&java.Method{Name: "readResolve", Return: java.ObjectType, Modifiers: java.ModProtected})

	entry := &java.Class{
		Name: "com.example.Entry", Modifiers: java.ModPublic,
		Super: "com.example.Base", Interfaces: []string{java.SerializableIface},
	}

	plain := &java.Class{
		Name: "com.example.Plain", Modifiers: java.ModPublic,
		Super: java.ObjectClass, Interfaces: []string{java.SerializableIface},
	}
	plain.AddMethod(&java.Method{Name: "readObject", Params: oisParam, Return: java.Void, Modifiers: java.ModPrivate})
	// A static method can never be a JVM callback, whatever its name.
	plain.AddMethod(&java.Method{Name: "readResolve", Return: java.ObjectType, Modifiers: java.ModStatic})

	ihandler := &java.Class{
		Name:      edges.InvocationHandlerIface,
		Modifiers: java.ModPublic | java.ModInterface | java.ModAbstract,
	}
	invokeParams := []java.Type{
		java.ObjectType,
		java.ClassType("java.lang.reflect.Method"),
		java.ArrayOf(java.ObjectType),
	}
	ihandler.AddMethod(&java.Method{
		Name: "invoke", Params: invokeParams, Return: java.ObjectType,
		Modifiers: java.ModPublic | java.ModAbstract,
	})

	handler := &java.Class{
		Name: "com.example.Handler", Modifiers: java.ModPublic,
		Super:      java.ObjectClass,
		Interfaces: []string{edges.InvocationHandlerIface, java.SerializableIface},
	}
	handler.AddMethod(&java.Method{
		Name: "invoke", Params: invokeParams, Return: java.ObjectType, Modifiers: java.ModPublic,
	})

	unrelated := &java.Class{Name: "com.example.Unrelated", Modifiers: java.ModPublic, Super: java.ObjectClass}
	unrelated.AddMethod(&java.Method{Name: "readObject", Params: oisParam, Return: java.Void, Modifiers: java.ModPrivate})

	h, err := java.NewHierarchy([]*java.Class{base, entry, plain, ihandler, handler, unrelated})
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	return h
}

func TestDispatchTargets(t *testing.T) {
	h := dispatchUniverse(t)
	targets := edges.DispatchTargets(h)

	got := make(map[string]string, len(targets)) // method key -> kind
	for i, tgt := range targets {
		got[string(tgt.Method.Key())] = tgt.Kind
		if i > 0 && !(targets[i-1].Method.Key() < tgt.Method.Key()) {
			t.Errorf("targets not sorted by key: %q before %q",
				targets[i-1].Method.Key(), tgt.Method.Key())
		}
	}
	want := map[string]string{
		// Inherited through the superclass chain: the declaring class is
		// the non-Serializable base — the case name-based sources miss.
		"com.example.Base#readResolve()":                                                           "readResolve",
		"com.example.Plain#readObject(java.io.ObjectInputStream)":                                  "readObject",
		"com.example.Handler#invoke(java.lang.Object,java.lang.reflect.Method,java.lang.Object[])": "invoke",
		// The interface's own abstract declaration is a target too: ALIAS
		// edges fan out from it to every concrete implementation.
		"java.lang.reflect.InvocationHandler#invoke(java.lang.Object,java.lang.reflect.Method,java.lang.Object[])": "invoke",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DispatchTargets = %v, want %v", got, want)
	}
}

// TestDispatchTargetsDedupe: two Serializable subclasses inheriting the
// same base callback yield one target for the shared method.
func TestDispatchTargetsDedupe(t *testing.T) {
	base := &java.Class{Name: "p.Base", Modifiers: java.ModPublic, Super: java.ObjectClass}
	base.AddMethod(&java.Method{Name: "readResolve", Return: java.ObjectType, Modifiers: java.ModProtected})
	a := &java.Class{Name: "p.A", Modifiers: java.ModPublic, Super: "p.Base", Interfaces: []string{java.SerializableIface}}
	b := &java.Class{Name: "p.B", Modifiers: java.ModPublic, Super: "p.Base", Interfaces: []string{java.SerializableIface}}
	h, err := java.NewHierarchy([]*java.Class{base, a, b})
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	targets := edges.DispatchTargets(h)
	if len(targets) != 1 {
		t.Fatalf("got %d targets, want 1 (deduped): %v", len(targets), targets)
	}
	if key := string(targets[0].Method.Key()); key != "p.Base#readResolve()" {
		t.Errorf("target key = %q, want p.Base#readResolve()", key)
	}
}

func TestDriverKey(t *testing.T) {
	if got, want := string(edges.DriverKey()), "java.io.ObjectInputStream#<dispatch>()"; got != want {
		t.Errorf("DriverKey() = %q, want %q", got, want)
	}
}
