package edges

// overrideAliasPass adds ALIAS edges from every method to the methods it
// overrides or implements (§III-B2 "Method Alias Graph Extraction",
// Formula 1).
type overrideAliasPass struct{}

func (overrideAliasPass) Name() string { return ProvMAG }
func (overrideAliasPass) Rel() string  { return RelAlias }

func (overrideAliasPass) Synthesize(h Host, c *Counts) error {
	hier := h.Hierarchy()
	batch := h.Batch()
	for _, name := range hier.SortedClassNames() {
		cl := hier.Class(name)
		for _, m := range cl.Methods {
			fromID, err := h.MethodNode(m)
			if err != nil {
				return err
			}
			for _, super := range h.AliasTargets(m) {
				toID, err := h.MethodNode(super)
				if err != nil {
					return err
				}
				batch.CreateRel(RelAlias, fromID, toID, nil)
				c.AliasEdges++
			}
		}
	}
	return nil
}
