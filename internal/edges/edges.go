// Package edges is the edge-synthesis pass pipeline of the code property
// graph. Each pass contributes one typed, provenance-tagged relationship
// family to the graph batch: call resolution emits CALL (the Precise Call
// Graph), override aliasing emits ALIAS (the Method Alias Graph,
// Formula 1), and the serialization-dispatch pass emits DISPATCH — edges
// from a virtual deserialization driver to every JVM-invoked
// deserialization callback, so chains that enter through callbacks are
// found without hand-declared sources.
//
// The package also owns the relationship-type vocabulary and its edge
// properties; package cpg re-exports them so graph consumers keep a
// single import. edges deliberately depends only on the program model
// (java/jimple/taint) and graphdb — never on cpg — which is what lets
// cpg run the pipeline.
package edges

import (
	"sort"
)

// Relationship types — the five edges of Table II plus the synthesized
// DISPATCH edge of the serialization-aware pipeline.
const (
	RelExtend    = "EXTEND"
	RelInterface = "INTERFACE"
	RelHas       = "HAS"
	RelCall      = "CALL"
	RelAlias     = "ALIAS"
	RelDispatch  = "DISPATCH"
)

// CALL edge properties.
const (
	PropPollutedPosition = "POLLUTED_POSITION"
	PropInvokeKind       = "INVOKE_KIND"
	PropStmtIndex        = "STMT_INDEX"
	PropInvokeClass      = "INVOKE_CLASS"
)

// DISPATCH edge properties.
const (
	// PropProvenance names the synthesis pass that created the edge.
	PropProvenance = "PROVENANCE"
	// PropDispatchKind records which JVM callback rule derived the edge:
	// a serialization callback name ("readObject", "readResolve",
	// "readExternal", "readObjectNoData", "validateObject") or "invoke".
	PropDispatchKind = "DISPATCH_KIND"
)

// Provenance tags: the pipeline stage each relationship type comes from.
const (
	ProvORG           = "org"           // object relationship graph assembly
	ProvPCG           = "pcg"           // call-resolution pass
	ProvMAG           = "mag"           // override-alias pass
	ProvSerialization = "serialization" // serialization-dispatch pass
)

// provenanceByRel maps every relationship type of the schema to the
// stage that synthesizes it. The rel-type exhaustiveness check
// (scripts/check_reltypes.sh) and TestProvenanceCoversAllRelTypes keep
// this table complete as the schema grows.
var provenanceByRel = map[string]string{
	RelExtend:    ProvORG,
	RelInterface: ProvORG,
	RelHas:       ProvORG,
	RelCall:      ProvPCG,
	RelAlias:     ProvMAG,
	RelDispatch:  ProvSerialization,
}

// Provenance returns the name of the pipeline stage that synthesizes
// edges of the given relationship type ("" for unknown types).
func Provenance(relType string) string { return provenanceByRel[relType] }

// AllRelTypes returns every relationship type of the schema, sorted.
func AllRelTypes() []string {
	out := make([]string, 0, len(provenanceByRel))
	for t := range provenanceByRel {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Counts accumulates what the passes produced; the graph builder copies
// them into its stats.
type Counts struct {
	CallEdges     int
	PrunedCalls   int
	AliasEdges    int
	DispatchEdges int
}

// Pass is one ordered stage of the edge-synthesis pipeline. A pass reads
// the analyzed program through Host and appends its edges to the host's
// batch; it must be deterministic — node and relationship creation order
// may not depend on map iteration or worker count.
type Pass interface {
	// Name is the pass's provenance tag (see the Prov* constants).
	Name() string
	// Rel is the relationship type the pass emits.
	Rel() string
	// Synthesize appends the pass's edges to the host batch, counting
	// them in c.
	Synthesize(h Host, c *Counts) error
}

// Pipeline returns the ordered pass list. The serialization-dispatch
// pass is gated and always runs last, so a gated-off build produces a
// byte-identical node/edge sequence.
func Pipeline(serializationDispatch bool) []Pass {
	ps := []Pass{callResolutionPass{}, overrideAliasPass{}}
	if serializationDispatch {
		ps = append(ps, serializationDispatchPass{})
	}
	return ps
}
