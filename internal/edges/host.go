package edges

import (
	"tabby/internal/graphdb"
	"tabby/internal/java"
	"tabby/internal/taint"
)

// Host is the graph builder's face toward the passes: node
// materialization, the analyzed program, and the batch the edges land
// in. cpg's builder implements it; tests may substitute lighter hosts.
type Host interface {
	// Hierarchy returns the analyzed program's class hierarchy.
	Hierarchy() *java.Hierarchy
	// Calls returns the controllability analysis's call edges per caller.
	Calls() map[java.MethodKey][]taint.CallEdge
	// Batch is the graph batch every pass appends to.
	Batch() *graphdb.Batch
	// KeepPrunedCalls reports whether all-∞ call edges are retained
	// (the MCG ablation mode).
	KeepPrunedCalls() bool
	// MethodNode returns (creating once) the node of a method.
	MethodNode(m *java.Method) (graphdb.ID, error)
	// PhantomNode returns (creating once) the node of an unresolvable
	// callee.
	PhantomNode(class, sub string) (graphdb.ID, error)
	// NodeByKey looks up an already-materialized method node.
	NodeByKey(key java.MethodKey) (graphdb.ID, bool)
	// ResolvedCallees returns the precomputed resolution of a caller's
	// call edges, aligned with Calls()[caller] (nil entries are phantom
	// callees). A nil slice means no precomputation; the pass resolves
	// through the hierarchy itself.
	ResolvedCallees(caller java.MethodKey) []*java.Method
	// AliasTargets returns the methods m overrides or implements
	// (Formula 1).
	AliasTargets(m *java.Method) []*java.Method
}
