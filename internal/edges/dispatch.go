package edges

import (
	"sort"

	"tabby/internal/graphdb"
	"tabby/internal/java"
)

// The virtual deserialization driver: a synthetic method node standing in
// for the JVM's ObjectInputStream machinery. Every DISPATCH edge starts
// here, modeling the call the runtime makes into user code when a stream
// is deserialized (Seneca's serialization-induced edges).
const (
	DriverClass  = "java.io.ObjectInputStream"
	DriverMethod = "<dispatch>"
)

// InvocationHandlerIface is the dynamic-proxy callback interface; any
// class implementing it can have its invoke method triggered by a
// deserialized proxy instance.
const InvocationHandlerIface = "java.lang.reflect.InvocationHandler"

// serializationCallbacks are the JVM-invoked private protocol methods of
// java.io.Serializable types, in derivation order.
var serializationCallbacks = []struct {
	kind string
	sub  string
}{
	{"readObject", "readObject(java.io.ObjectInputStream)"},
	{"readResolve", "readResolve()"},
	{"readExternal", "readExternal(java.io.ObjectInput)"},
	{"readObjectNoData", "readObjectNoData()"},
	{"validateObject", "validateObject()"},
}

// invokeSub is InvocationHandler.invoke's sub-signature.
const invokeSub = "invoke(java.lang.Object,java.lang.reflect.Method,java.lang.Object[])"

// DriverKey is the method key of the virtual deserialization driver.
func DriverKey() java.MethodKey {
	return java.MakeMethodKey(DriverClass, DriverMethod, nil)
}

func driverMethod() *java.Method {
	return &java.Method{
		ClassName: DriverClass,
		Name:      DriverMethod,
		Return:    java.Void,
		Modifiers: java.ModPublic,
	}
}

// DispatchTarget is one derived deserialization entry point.
type DispatchTarget struct {
	Method *java.Method
	// Kind is the callback rule that derived the target: one of the
	// serializationCallbacks kinds ("readObject", "readResolve",
	// "readExternal", "readObjectNoData", "validateObject") or "invoke".
	Kind string
}

// DispatchTargets derives every deserialization entry point of the
// hierarchy: for each Serializable class, the readObject/readResolve/
// readExternal methods it would dispatch to (resolution walks the
// superclass chain, so a non-Serializable base class's readResolve
// inherited by a Serializable subclass is found — the case name-based
// source matching misses); and for each InvocationHandler implementor,
// its invoke method. Targets are deduplicated by method key and returned
// in key order.
func DispatchTargets(h *java.Hierarchy) []DispatchTarget {
	byKey := make(map[java.MethodKey]DispatchTarget)
	add := func(m *java.Method, kind string) {
		// Static methods are never JVM callbacks. Abstract declarations
		// stay in: an interface's own callback declaration (for example
		// Externalizable.readExternal) is a source node in the graph's
		// model — ALIAS edges connect it to every concrete override, which
		// is exactly how interface-dispatched chains are reported.
		if m == nil || m.IsStatic() {
			return
		}
		if _, ok := byKey[m.Key()]; !ok {
			byKey[m.Key()] = DispatchTarget{Method: m, Kind: kind}
		}
	}
	for _, name := range h.SerializableClasses() {
		for _, cb := range serializationCallbacks {
			add(h.ResolveMethod(name, cb.sub), cb.kind)
		}
	}
	for _, name := range h.SortedClassNames() {
		if h.Implements(name, InvocationHandlerIface) {
			add(h.ResolveMethod(name, invokeSub), "invoke")
		}
	}
	out := make([]DispatchTarget, 0, len(byKey))
	for _, t := range byKey {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Method.Key() < out[j].Method.Key() })
	return out
}

// serializationDispatchPass materializes the virtual driver node and one
// DISPATCH edge per derived entry point. It runs last so that a build
// with the pass disabled produces a byte-identical node/edge sequence.
type serializationDispatchPass struct{}

func (serializationDispatchPass) Name() string { return ProvSerialization }
func (serializationDispatchPass) Rel() string  { return RelDispatch }

func (serializationDispatchPass) Synthesize(h Host, c *Counts) error {
	targets := DispatchTargets(h.Hierarchy())
	if len(targets) == 0 {
		return nil
	}
	driverID, err := h.MethodNode(driverMethod())
	if err != nil {
		return err
	}
	batch := h.Batch()
	for _, t := range targets {
		id, err := h.MethodNode(t.Method)
		if err != nil {
			return err
		}
		batch.CreateRelOwned(RelDispatch, driverID, id, graphdb.Props{
			PropProvenance:   ProvSerialization,
			PropDispatchKind: t.Kind,
		})
		c.DispatchEdges++
	}
	return nil
}
