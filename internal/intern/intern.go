// Package intern provides process-wide string interning with dense int32
// identities. The cold pipeline's inner loops (taint scheduling, CPG
// batch assembly) key their hot tables by these ids instead of re-hashing
// method-key strings: an id is assigned once per distinct string for the
// lifetime of the process, so id-indexed slices replace string-keyed maps
// on every later use of the same key.
package intern

import "sync"

// Table interns strings to dense int32 ids with reverse lookup. The zero
// Table is not ready for use; call NewTable. All methods are safe for
// concurrent use. Ids are assigned contiguously from 0 in first-use
// order, so they are suitable as slice indices but are NOT stable across
// processes — persist strings, never ids.
type Table struct {
	mu   sync.RWMutex
	ids  map[string]int32
	strs []string
}

// NewTable creates an empty intern table.
func NewTable() *Table {
	return &Table{ids: make(map[string]int32)}
}

// ID returns the dense id for s, assigning the next id on first use.
func (t *Table) ID(s string) int32 {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id = int32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Lookup returns the id for s without assigning one.
func (t *Table) Lookup(s string) (int32, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.ids[s]
	return id, ok
}

// Str returns the string for a previously assigned id.
func (t *Table) Str(id int32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.strs[id]
}

// Len returns the number of interned strings.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.strs)
}

// Methods is the process-wide method-key table: every java.MethodKey the
// analysis touches is interned here exactly once.
var Methods = NewTable()
