package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestTableDenseIDs(t *testing.T) {
	tab := NewTable()
	if tab.Len() != 0 {
		t.Fatalf("new table Len = %d, want 0", tab.Len())
	}
	keys := []string{"a.B#c()", "a.B#d()", "x.Y#z(int)"}
	for i, k := range keys {
		if id := tab.ID(k); id != int32(i) {
			t.Fatalf("ID(%q) = %d, want %d (first-use order)", k, id, i)
		}
	}
	// Re-interning is stable and assigns nothing new.
	for i, k := range keys {
		if id := tab.ID(k); id != int32(i) {
			t.Fatalf("re-ID(%q) = %d, want %d", k, id, i)
		}
	}
	if tab.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(keys))
	}
	for i, k := range keys {
		if got := tab.Str(int32(i)); got != k {
			t.Fatalf("Str(%d) = %q, want %q", i, got, k)
		}
	}
	if id, ok := tab.Lookup("a.B#d()"); !ok || id != 1 {
		t.Fatalf("Lookup hit = (%d, %v), want (1, true)", id, ok)
	}
	if _, ok := tab.Lookup("never.Seen#()"); ok {
		t.Fatal("Lookup of unseen key reported ok; it must not assign")
	}
	if tab.Len() != len(keys) {
		t.Fatalf("Lookup assigned an id: Len = %d, want %d", tab.Len(), len(keys))
	}
}

func TestTableConcurrentInterning(t *testing.T) {
	tab := NewTable()
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	ids := make([][]int32, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int32, perG)
			for i := 0; i < perG; i++ {
				// All goroutines intern the same key set, racing on first use.
				out[i] = tab.ID(fmt.Sprintf("m#%d", i))
			}
			ids[g] = out
		}(g)
	}
	wg.Wait()
	if tab.Len() != perG {
		t.Fatalf("Len = %d, want %d distinct keys", tab.Len(), perG)
	}
	for g := 1; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got ID %d for key %d, goroutine 0 got %d", g, ids[g][i], i, ids[0][i])
			}
		}
	}
	for i := 0; i < perG; i++ {
		if got, want := tab.Str(ids[0][i]), fmt.Sprintf("m#%d", i); got != want {
			t.Fatalf("Str(ids[%d]) = %q, want %q", i, got, want)
		}
	}
}
