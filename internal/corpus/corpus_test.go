package corpus

import (
	"strings"
	"testing"

	"tabby/internal/java"
	"tabby/internal/javasrc"
)

func TestRTCompiles(t *testing.T) {
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{RT()})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the URLDNS machinery.
	for _, key := range []string{
		"java.util.HashMap#readObject(java.io.ObjectInputStream)",
		"java.util.HashMap#hash(java.lang.Object)",
		"java.net.URL#hashCode()",
		"java.net.URLStreamHandler#getHostAddress(java.net.URL)",
	} {
		if prog.Body(java.MethodKey(key)) == nil {
			t.Errorf("rt body missing: %s", key)
		}
	}
	// Object must not extend itself.
	obj := prog.Hierarchy.Class(java.ObjectClass)
	if obj == nil || obj.Super != "" {
		t.Fatalf("java.lang.Object super = %q", obj.Super)
	}
	if !prog.Hierarchy.IsSerializable("java.util.HashMap") {
		t.Error("HashMap must be serializable")
	}
}

func TestAllComponentsCompile(t *testing.T) {
	for _, comp := range Components() {
		comp := comp
		t.Run(comp.Name, func(t *testing.T) {
			prog, err := javasrc.CompileArchives(append([]javasrc.ArchiveSource{RT()}, comp.Archives...))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// Every planted chain's source method must exist with a body.
			for _, spec := range comp.Chains {
				if prog.Body(spec.Source) == nil {
					t.Errorf("chain %s: source body %s missing", spec.ID, spec.Source)
				}
			}
		})
	}
}

func TestComponentManifestsMatchPaperCounts(t *testing.T) {
	// The planted known/unknown totals must reproduce the paper's
	// dataset-wide numbers: 38 known in dataset; Tabby finds 26 known and
	// 27 unknown; fakes Tabby can see total 26.
	var dataset, known, unknown, tabbyKnown, tabbyUnknown, tabbyFake int
	for _, comp := range Components() {
		dataset += comp.DatasetChains
		counts := comp.CountByCategory()
		known += counts[CatKnown]
		unknown += counts[CatUnknown]
		for _, spec := range comp.Chains {
			if !spec.ExpectTabby {
				continue
			}
			switch spec.Category {
			case CatKnown:
				tabbyKnown++
			case CatUnknown:
				tabbyUnknown++
			case CatFake:
				tabbyFake++
			}
		}
	}
	if dataset != 38 {
		t.Errorf("dataset chains = %d, want 38", dataset)
	}
	if known != dataset {
		t.Errorf("planted known chains = %d, want %d (one per dataset entry)", known, dataset)
	}
	if tabbyKnown != 26 {
		t.Errorf("tabby-findable known = %d, want 26", tabbyKnown)
	}
	if tabbyUnknown != 27 {
		t.Errorf("tabby-findable unknown = %d, want 27", tabbyUnknown)
	}
	if tabbyFake != 26 {
		t.Errorf("tabby-visible fakes = %d, want 26", tabbyFake)
	}
	_ = unknown
}

func TestComponentByNameErrors(t *testing.T) {
	if _, err := ComponentByName("NoSuchThing"); err == nil {
		t.Fatal("unknown component must error")
	}
	comp, err := ComponentByName("C3P0")
	if err != nil || comp.Package != "com.mchange.v2.c3p0" {
		t.Fatalf("C3P0 lookup: %v %+v", err, comp)
	}
}

func TestScenesCompile(t *testing.T) {
	for _, scene := range Scenes() {
		scene := scene
		t.Run(scene.Name, func(t *testing.T) {
			prog, err := javasrc.CompileArchives(append([]javasrc.ArchiveSource{RT()}, scene.Archives...))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, spec := range scene.Chains {
				if prog.Body(spec.Source) == nil {
					t.Errorf("scene chain %s: source body %s missing", spec.ID, spec.Source)
				}
			}
			if len(scene.PackagePrefixes) == 0 {
				t.Error("scene needs package prefixes")
			}
		})
	}
}

func TestSceneByName(t *testing.T) {
	if _, err := SceneByName("Atlantis"); err == nil {
		t.Fatal("unknown scene must error")
	}
	s, err := SceneByName("JDK8")
	if err != nil || s.Version != "8u242" {
		t.Fatalf("JDK8 lookup: %v %+v", err, s)
	}
}

func TestSceneJarCountsMatchPaper(t *testing.T) {
	for _, scene := range Scenes() {
		want := scene.PaperJarCount
		got := len(scene.Archives)
		if scene.Name == "JDK8" {
			got++ // rt.jar is part of the JDK8 subject
		}
		if got != want {
			t.Errorf("%s: %d jars, paper %d", scene.Name, got, want)
		}
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	spec := SyntheticSpecs()[0]
	p1, err := GenerateSynthetic(spec, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GenerateSynthetic(spec, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Hierarchy.NumClasses() != p2.Hierarchy.NumClasses() {
		t.Error("generation must be deterministic")
	}
	if len(p1.Bodies) != len(p2.Bodies) {
		t.Error("body counts differ across runs")
	}
	if err := p1.Validate(); err != nil {
		t.Fatalf("generated program invalid: %v", err)
	}
	if len(p1.Archives) == 0 || len(p1.Archives) > spec.PaperJarCount {
		t.Errorf("archive count %d out of range (max %d)", len(p1.Archives), spec.PaperJarCount)
	}
}

func TestGenerateSyntheticScalesCounts(t *testing.T) {
	spec := SyntheticSpecs()[0]
	small, err := GenerateSynthetic(spec, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	big, err := GenerateSynthetic(spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if big.Hierarchy.NumClasses() <= small.Hierarchy.NumClasses() {
		t.Errorf("scale must grow classes: %d vs %d", small.Hierarchy.NumClasses(), big.Hierarchy.NumClasses())
	}
}

func TestPatternSpecsInternallyConsistent(t *testing.T) {
	for _, comp := range Components() {
		ids := make(map[string]bool)
		for _, spec := range comp.Chains {
			if ids[spec.ID] {
				t.Errorf("%s: duplicate chain id %s", comp.Name, spec.ID)
			}
			ids[spec.ID] = true
			if spec.Effective() == (spec.Category == CatFake) {
				t.Errorf("%s/%s: Effective/Category mismatch", comp.Name, spec.ID)
			}
			if spec.SinkClass == "" || spec.SinkMethod == "" {
				t.Errorf("%s/%s: missing sink identity", comp.Name, spec.ID)
			}
			if !strings.Contains(string(spec.Source), "#") {
				t.Errorf("%s/%s: malformed source %s", comp.Name, spec.ID, spec.Source)
			}
			// Proxy chains must be invisible to everyone.
			if spec.Pattern == PatternProxy && (spec.ExpectTabby || spec.ExpectGI || spec.ExpectSL) {
				t.Errorf("%s/%s: proxy chains are invisible by design", comp.Name, spec.ID)
			}
		}
	}
}
