package corpus

import (
	"fmt"

	"tabby/internal/java"
	"tabby/internal/javasrc"
)

// Scene is one development-environment target of Table X. Unlike the
// Table IX components (analyzed against a known gadget dataset), scenes
// are whole environments: every chain Tabby reports inside the scene's
// package prefixes counts toward the result column, and the manifest
// records which are effective.
type Scene struct {
	Name    string
	Version string
	// Archives are compiled together with RT(); for the JDK8 scene the
	// runtime itself is the subject.
	Archives []javasrc.ArchiveSource
	// PackagePrefixes scope which reported chains belong to the scene.
	PackagePrefixes []string
	Chains          []ChainSpec

	// Paper columns for side-by-side reporting.
	PaperJarCount      int
	PaperCodeMB        float64
	PaperResultCount   int
	PaperEffective     int
	PaperFPRPercent    float64
	PaperSearchSeconds float64
}

// Scenes returns the five Table X environments.
func Scenes() []Scene {
	return []Scene{
		springScene(),
		jdk8Scene(),
		middlewareScene("Tomcat", "8.5.47", "org.apache.catalina", 25, 7.9, 4, 3, 25, 3.6, 2, 1),
		middlewareScene("Jetty", "9.4.36", "org.eclipse.jetty", 67, 10.3, 6, 4, 33.3, 4.1, 3, 2),
		dubboScene(),
	}
}

// SceneByName returns one scene by name.
func SceneByName(name string) (Scene, error) {
	for _, s := range Scenes() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scene{}, fmt.Errorf("unknown scene %q", name)
}

// springScene models §IV-D1: the Spring framework environment with the
// Table XI JNDI chains hand-modelled in spring-aop, four further
// effective chains, and three conditional fakes (10 results, 7 effective,
// 30 % FPR).
func springScene() Scene {
	s := newSynth("org.springframework.web")
	repeat(3, func() { s.addIface(CatUnknown) })
	s.addPlain(CatUnknown)
	repeat(3, func() { s.addCond() })

	aop := springAopSources()
	scene := Scene{
		Name:            "Spring",
		Version:         "2.4.3",
		PackagePrefixes: []string{"org.springframework.", "ch.qos.logback."},
		PaperJarCount:   66, PaperCodeMB: 25.5,
		PaperResultCount: 10, PaperEffective: 7,
		PaperFPRPercent: 30, PaperSearchSeconds: 8.2,
	}
	scene.Archives = append([]javasrc.ArchiveSource{
		{Name: "spring-aop.jar", Files: aop},
	}, s.build("spring-web", 0, false).Archives...)
	scene.Archives = append(scene.Archives, fillerArchives("spring", 66-len(scene.Archives))...)
	scene.Chains = append(springAopChains(), s.chains...)
	return scene
}

// springAopSources hand-models the Table XI gadget family: serializable
// AOP holders whose deserialization pulls a TargetSource, whose
// getTarget() walks into SimpleJndiBeanFactory.getBean →
// JndiLocatorSupport.lookup → javax.naming.Context.lookup.
func springAopSources() []javasrc.File {
	const src = `
package org.springframework.aop.target;

import java.io.Serializable;
import java.io.ObjectInputStream;

public interface TargetSource {
    Object getTarget();
}

public class JndiLocatorSupport {
    public javax.naming.Context jndiContext;
    public Object lookup(String jndiName) {
        return jndiContext.lookup(jndiName);
    }
}

public class SimpleJndiBeanFactory extends JndiLocatorSupport {
    public Object getBean(String name) {
        return lookup(name);
    }
}

public class LazyInitTargetSource implements TargetSource, Serializable {
    public SimpleJndiBeanFactory beanFactory;
    public String targetBeanName;
    public Object getTarget() {
        return beanFactory.getBean(this.targetBeanName);
    }
}

public class PrototypeTargetSource implements TargetSource, Serializable {
    public SimpleJndiBeanFactory beanFactory;
    public String targetBeanName;
    public Object getTarget() {
        return beanFactory.getBean(this.targetBeanName);
    }
}

public class CommonsPoolTargetSource implements TargetSource, Serializable {
    public SimpleJndiBeanFactory beanFactory;
    public String targetBeanName;
    public Object getTarget() {
        return beanFactory.getBean(this.targetBeanName);
    }
}

public class LazyAdvisorHolder implements Serializable {
    public LazyInitTargetSource targetSource;
    private void readObject(ObjectInputStream in) {
        Object target = targetSource.getTarget();
    }
}

public class PrototypeAdvisorHolder implements Serializable {
    public PrototypeTargetSource targetSource;
    private void readObject(ObjectInputStream in) {
        Object target = targetSource.getTarget();
    }
}

public class PoolingAdvisorHolder implements Serializable {
    public CommonsPoolTargetSource targetSource;
    private void readObject(ObjectInputStream in) {
        Object target = targetSource.getTarget();
    }
}
`
	return []javasrc.File{{Name: "spring-aop/TargetSources.java", Source: src}}
}

func springAopChains() []ChainSpec {
	ois := []java.Type{java.ClassType("java.io.ObjectInputStream")}
	mk := func(id, holder string) ChainSpec {
		return ChainSpec{
			ID:          id,
			Source:      java.MakeMethodKey("org.springframework.aop.target."+holder, "readObject", ois),
			SinkClass:   "javax.naming.Context",
			SinkMethod:  "lookup",
			Category:    CatUnknown,
			Pattern:     PatternIface,
			ExpectTabby: true, ExpectSL: true,
		}
	}
	return []ChainSpec{
		mk("spring-aop-lazyinit", "LazyAdvisorHolder"),
		mk("spring-aop-prototype", "PrototypeAdvisorHolder"),
		mk("spring-aop-cve-2020-11619", "PoolingAdvisorHolder"),
	}
}

// jdk8Scene models §IV-D2: the JDK runtime itself is the subject. URLDNS
// lives in RT(); nine further chains (five of them the XStream-blacklist
// bypasses) are planted in JDK-internal packages, plus three fakes
// (13 results, 10 effective, 23.1 % FPR).
func jdk8Scene() Scene {
	s := newSynth("com.sun.jndi.toolkit")
	repeat(5, func() { s.addIface(CatUnknown) }) // the XStream-bypass family
	repeat(3, func() { s.addPlain(CatUnknown) })
	s.addDeepIface(CatUnknown)
	repeat(3, func() { s.addCond() })

	scene := Scene{
		Name:            "JDK8",
		Version:         "8u242",
		PackagePrefixes: []string{"java.", "javax.", "com.sun.", "sun."},
		PaperJarCount:   19, PaperCodeMB: 102.2,
		PaperResultCount: 13, PaperEffective: 10,
		PaperFPRPercent: 23.1, PaperSearchSeconds: 10.2,
	}
	scene.Archives = s.build("jdk-internal", 0, false).Archives
	scene.Archives = append(scene.Archives, fillerArchives("jdk", 19-1-len(scene.Archives))...)
	scene.Chains = append([]ChainSpec{{
		ID:          "jdk8-urldns",
		Source:      java.MakeMethodKey("java.util.HashMap", "readObject", []java.Type{java.ClassType("java.io.ObjectInputStream")}),
		SinkClass:   "java.net.InetAddress",
		SinkMethod:  "getByName",
		Category:    CatKnown,
		Pattern:     PatternIface,
		ExpectTabby: true, ExpectSL: true,
	}}, s.chains...)
	return scene
}

// middlewareScene synthesizes one §IV-D3 middleware environment with the
// given effective/fake chain mix.
func middlewareScene(name, version, pkg string, jars int, codeMB float64, results, effective int, fpr, searchSec float64, ifaceChains, condFakes int) Scene {
	s := newSynth(pkg + ".core")
	repeat(ifaceChains, func() { s.addIface(CatUnknown) })
	repeat(effective-ifaceChains, func() { s.addDeepIface(CatUnknown) })
	repeat(condFakes, func() { s.addCond() })
	scene := Scene{
		Name:            name,
		Version:         version,
		PackagePrefixes: []string{pkg + "."},
		PaperJarCount:   jars, PaperCodeMB: codeMB,
		PaperResultCount: results, PaperEffective: effective,
		PaperFPRPercent: fpr, PaperSearchSeconds: searchSec,
	}
	scene.Archives = s.build(name, 0, false).Archives
	scene.Archives = append(scene.Archives, fillerArchives(pkg, jars-len(scene.Archives))...)
	scene.Chains = s.chains
	return scene
}

// dubboScene models §IV-D3's Apache Dubbo environment: its effective
// chains end at the lookup/getConnection/invoke sink family the paper
// names, with the getConnection chain hand-modelled in the
// JdbcRowSetImpl/DriverAdapterCPDS style (5 results, 3 effective, 40 %
// FPR).
func dubboScene() Scene {
	const pkg = "org.apache.dubbo"
	s := newSynth(pkg + ".remoting")
	s.addIface(CatUnknown)     // rotating sink family
	s.addDeepIface(CatUnknown) // deep variant
	repeat(2, func() { s.addCond() })

	const src = `
package org.apache.dubbo.common;

import java.io.Serializable;
import java.io.ObjectInputStream;

public class DriverAdapterCPDS implements javax.sql.DataSource, Serializable {
    public String url;
    public Object getConnection() {
        return null;
    }
}

public class PoolableConnectionHolder implements Serializable {
    public javax.sql.DataSource dataSource;
    private void readObject(ObjectInputStream in) {
        Object conn = dataSource.getConnection();
    }
}
`
	scene := Scene{
		Name:            "Apache Dubbo",
		Version:         "3.0.2",
		PackagePrefixes: []string{pkg + "."},
		PaperJarCount:   15, PaperCodeMB: 13.6,
		PaperResultCount: 5, PaperEffective: 3,
		PaperFPRPercent: 40, PaperSearchSeconds: 5.5,
	}
	scene.Archives = append([]javasrc.ArchiveSource{{
		Name:  "dubbo-common.jar",
		Files: []javasrc.File{{Name: "dubbo/Pool.java", Source: src}},
	}}, s.build("dubbo", 0, false).Archives...)
	scene.Archives = append(scene.Archives, fillerArchives(pkg, 15-len(scene.Archives))...)
	scene.Chains = append([]ChainSpec{{
		ID:          "dubbo-getconnection",
		Source:      java.MakeMethodKey(pkg+".common.PoolableConnectionHolder", "readObject", []java.Type{java.ClassType("java.io.ObjectInputStream")}),
		SinkClass:   "javax.sql.DataSource",
		SinkMethod:  "getConnection",
		Category:    CatUnknown,
		Pattern:     PatternIface,
		ExpectTabby: true, ExpectSL: true,
	}}, s.chains...)
	return scene
}

// fillerArchives pads a scene to the paper's jar-file count with small
// dependency jars containing unrelated utility classes.
func fillerArchives(prefix string, n int) []javasrc.ArchiveSource {
	if n <= 0 {
		return nil
	}
	out := make([]javasrc.ArchiveSource, 0, n)
	for i := 0; i < n; i++ {
		pkg := fmt.Sprintf("%s.dep%d", sanitizePkg(prefix), i)
		src := fmt.Sprintf(`
package %s;

public class Util%d {
    public int counter;
    public int bump(int by) {
        this.counter = this.counter + by;
        return this.counter;
    }
    public String describe() {
        return "util-%d";
    }
}
`, pkg, i, i)
		out = append(out, javasrc.ArchiveSource{
			Name:  fmt.Sprintf("%s-dep%d.jar", sanitizePkg(prefix), i),
			Files: []javasrc.File{{Name: fmt.Sprintf("dep%d.java", i), Source: src}},
		})
	}
	return out
}

func sanitizePkg(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == '.':
			out = append(out, r)
		}
	}
	return string(out)
}
