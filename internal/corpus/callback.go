package corpus

import (
	"tabby/internal/java"
	"tabby/internal/javasrc"
)

// Callback-only patterns: chains whose entry point no hand-declared
// source configuration matches, reachable only through the
// serialization-dispatch pass's derived entry points (DESIGN.md §14).
const (
	// PatternCallbackResolve enters through a readResolve inherited from
	// a non-Serializable base class: name-based source matching (which
	// requires the declaring class to be Serializable) misses it, while
	// hierarchy-driven dispatch derivation resolves it through the
	// Serializable subclass.
	PatternCallbackResolve Pattern = "callback-resolve"
	// PatternCallbackProxy enters through InvocationHandler.invoke — a
	// JVM callback outside the readObject-family name list entirely.
	PatternCallbackProxy Pattern = "callback-proxy"
)

// CallbackComponents returns the components whose chains are reachable
// only via derived dispatch entry points. They are deliberately NOT part
// of Components() — the Table IX counts and goldens are pinned over that
// set — and serve the serialization-dispatch recall tests: with the pass
// on, every chain here is found; with it off, none is. ExpectTabby is
// false because the paper's configuration (the gate off) cannot see them.
func CallbackComponents() []Component {
	return []Component{callbackResolveComponent(), callbackProxyComponent()}
}

// callbackResolveComponent plants Entry extends Base (Serializable only
// at the subclass) where Base.readResolve relays this.cmd into
// Runtime.exec. The dispatch pass resolves readResolve through Entry's
// superclass chain to Base's declaration.
func callbackResolveComponent() Component {
	const pkg = "com.example.resolvecb"
	src := `
public class ResolveBase {
    public String cmd;

    protected Object readResolve() {
        ResolveRelay.relay(this.cmd);
        return this.cmd;
    }
}

class ResolveEntry extends ResolveBase implements java.io.Serializable {
    public int marker;
}

class ResolveRelay {
    static void relay(String c) {
        java.lang.Process r = java.lang.Runtime.getRuntime().exec(c);
    }
}
`
	return Component{
		Name:    "Callback-ReadResolve",
		Package: pkg,
		Archives: []javasrc.ArchiveSource{{
			Name:  "callback-readresolve.jar",
			Files: []javasrc.File{{Name: "com/example/resolvecb/ResolveBase.java", Source: "package " + pkg + ";\n" + src}},
		}},
		Chains: []ChainSpec{{
			ID:         "CB1",
			Source:     java.MakeMethodKey(pkg+".ResolveBase", "readResolve", nil),
			SinkClass:  "java.lang.Runtime",
			SinkMethod: "exec",
			Category:   CatUnknown,
			Pattern:    PatternCallbackResolve,
		}},
	}
}

// callbackProxyComponent plants a serializable InvocationHandler whose
// invoke relays this.cmd into a JNDI lookup. "invoke" is not in any
// source name list; only the dispatch pass's InvocationHandler rule
// marks it an entry point.
func callbackProxyComponent() Component {
	const pkg = "com.example.proxycb"
	src := `
public class ProxyHandler implements java.lang.reflect.InvocationHandler, java.io.Serializable {
    public String cmd;

    public Object invoke(Object proxy, java.lang.reflect.Method method, Object[] args) {
        ProxyRelay.relay(this.cmd);
        return this.cmd;
    }
}

class ProxyRelay {
    static void relay(String c) {
        javax.naming.InitialContext ctx = new javax.naming.InitialContext();
        Object r = ctx.lookup(c);
    }
}
`
	return Component{
		Name:    "Callback-Proxy",
		Package: pkg,
		Archives: []javasrc.ArchiveSource{{
			Name:  "callback-proxy.jar",
			Files: []javasrc.File{{Name: "com/example/proxycb/ProxyHandler.java", Source: "package " + pkg + ";\n" + src}},
		}},
		Chains: []ChainSpec{{
			ID: "CB2",
			Source: java.MakeMethodKey(pkg+".ProxyHandler", "invoke", []java.Type{
				java.ObjectType,
				java.ClassType("java.lang.reflect.Method"),
				java.ArrayOf(java.ObjectType),
			}),
			SinkClass:  "javax.naming.Context",
			SinkMethod: "lookup",
			Category:   CatUnknown,
			Pattern:    PatternCallbackProxy,
		}},
	}
}
