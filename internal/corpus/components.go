package corpus

import (
	"fmt"

	"tabby/internal/java"
	"tabby/internal/javasrc"
)

// paperRow records one row of paper Table IX: the per-tool result/fake/
// known/unknown counts published for GadgetInspector (gi), Tabby (tb) and
// Serianalyzer (sl). These numbers drive the synthesis of each component
// so the reproduced experiment exhibits the same per-tool behaviour.
type paperRow struct {
	name    string
	pkg     string
	dataset int

	giFake, giKnown, giUnknown int
	tbFake, tbKnown, tbUnknown int
	slFake, slKnown, slUnknown int
	slTimeout                  bool

	// handChains hooks in hand-modelled flavor chains (e.g. the
	// commons-collections InvokerTransformer family); each replaces one
	// synthesized chain of the named pattern.
	handChains func(s *synth)
}

// tableIX is the full 26-component table of the paper.
var tableIX = []paperRow{
	{name: "AspectJWeaver", pkg: "org.aspectj.weaver", dataset: 1,
		giFake: 8, tbKnown: 1, slFake: 27},
	{name: "BeanShell1", pkg: "bsh", dataset: 1,
		giFake: 2, tbFake: 2, tbKnown: 1, slFake: 1},
	{name: "C3P0", pkg: "com.mchange.v2.c3p0", dataset: 1,
		giFake: 2, tbFake: 2, tbKnown: 1, tbUnknown: 3, slUnknown: 1,
		handChains: c3p0Flavor},
	{name: "Click1", pkg: "org.apache.click", dataset: 1,
		giFake: 3, giKnown: 1, tbKnown: 1, slFake: 56},
	{name: "Clojure", pkg: "clojure.lang", dataset: 1,
		giFake: 9, giKnown: 1, giUnknown: 2, tbFake: 1, tbKnown: 1, slTimeout: true},
	{name: "CommonsBeanutils1", pkg: "org.apache.commons.beanutils", dataset: 1,
		giFake: 2, tbKnown: 1, slFake: 50,
		handChains: commonsBeanutilsFlavor},
	{name: "commons-collections(3.2.1)", pkg: "org.apache.commons.collections", dataset: 5,
		giFake: 3, giUnknown: 1, tbFake: 4, tbKnown: 4, tbUnknown: 9, slFake: 73,
		handChains: commonsCollectionsFlavor("org.apache.commons.collections")},
	{name: "commons-collections(4.0.0)", pkg: "org.apache.commons.collections4", dataset: 2,
		giFake: 3, giUnknown: 1, tbFake: 5, tbKnown: 1, tbUnknown: 12, slFake: 38,
		handChains: commonsCollectionsFlavor("org.apache.commons.collections4")},
	{name: "FileUpload1", pkg: "org.apache.commons.fileupload", dataset: 2,
		giFake: 2, giKnown: 1, tbKnown: 2, slFake: 4, slKnown: 2},
	{name: "Groovy1", pkg: "org.codehaus.groovy.runtime", dataset: 1,
		giFake: 4, tbFake: 2, slFake: 137},
	{name: "Hibernate", pkg: "org.hibernate", dataset: 2,
		giFake: 2, tbKnown: 2, tbUnknown: 2, slFake: 55},
	{name: "JBossInterceptors1", pkg: "org.jboss.interceptor", dataset: 1,
		giFake: 2, tbFake: 2, tbKnown: 1, slFake: 6, slKnown: 1},
	{name: "JSON1", pkg: "net.sf.json", dataset: 1,
		giFake: 4},
	{name: "JavaassistWeld1", pkg: "org.jboss.weld", dataset: 1,
		giFake: 2, tbFake: 2, tbKnown: 1, slFake: 2, slKnown: 1},
	{name: "Jython1", pkg: "org.python.core", dataset: 1,
		giFake: 42, tbFake: 2, slTimeout: true},
	{name: "MozillaRhino", pkg: "org.mozilla.javascript", dataset: 2,
		giFake: 3, tbKnown: 1, slFake: 93},
	{name: "Myface", pkg: "org.apache.myfaces", dataset: 1,
		giFake: 2, tbKnown: 1},
	{name: "Rome", pkg: "com.sun.syndication", dataset: 1,
		giFake: 2, tbKnown: 1, tbUnknown: 1, slFake: 18, slKnown: 1},
	{name: "Spring", pkg: "org.springframework.core", dataset: 2,
		giFake: 2, tbFake: 2, slFake: 4},
	{name: "Vaadin1", pkg: "com.vaadin", dataset: 1,
		giFake: 5, giKnown: 1, tbKnown: 1, slFake: 18},
	{name: "Wicket1", pkg: "org.apache.wicket.util", dataset: 2,
		giFake: 2, giKnown: 1, tbKnown: 2, slFake: 3, slKnown: 2},
	{name: "commons-configration", pkg: "org.apache.commons.configuration", dataset: 1,
		giFake: 2},
	{name: "spring-beans", pkg: "org.springframework.beans", dataset: 2,
		giFake: 2, tbFake: 1, tbKnown: 1},
	{name: "spring-aop", pkg: "org.springframework.aop", dataset: 2,
		giFake: 6, tbFake: 1, tbKnown: 1},
	{name: "XBean", pkg: "org.apache.xbean", dataset: 1,
		giFake: 2, tbKnown: 1},
	{name: "Resin", pkg: "com.caucho", dataset: 1,
		giFake: 2},
}

// Components synthesizes all 26 evaluation components of Table IX.
func Components() []Component {
	out := make([]Component, 0, len(tableIX))
	for _, row := range tableIX {
		out = append(out, buildComponent(row))
	}
	return out
}

// ComponentByName returns one component, or an error listing valid names.
func ComponentByName(name string) (Component, error) {
	for _, row := range tableIX {
		if row.name == name {
			return buildComponent(row), nil
		}
	}
	return Component{}, fmt.Errorf("unknown component %q (see corpus.Components)", name)
}

// buildComponent derives the planted-chain mix from the paper's row and
// synthesizes the sources.
func buildComponent(row paperRow) Component {
	s := newSynth(row.pkg)

	slKnown, slUnknown, slFake := row.slKnown, row.slUnknown, row.slFake
	if row.slTimeout {
		slKnown, slUnknown, slFake = 0, 0, 0
	}

	// --- effective chains recorded in the dataset ("Known in dataset").
	plain := minInt(row.giKnown, slKnown)
	plainDeep := row.giKnown - plain
	iface := maxInt(0, slKnown-plain)
	deepIface := maxInt(0, row.tbKnown-plain-plainDeep-iface)
	proxy := maxInt(0, row.dataset-row.tbKnown)

	if row.handChains != nil && deepIface > 0 {
		row.handChains(s)
		deepIface--
	}
	repeat(plain, func() { s.addPlain(CatKnown) })
	repeat(plainDeep, func() { s.addPlainDeep(CatKnown) })
	repeat(iface, func() { s.addIface(CatKnown) })
	repeat(deepIface, func() { s.addDeepIface(CatKnown) })
	repeat(proxy, func() { s.addProxy(CatKnown) })

	// --- effective chains outside the dataset (the "Unknown" columns).
	giOnly := maxInt(0, row.giUnknown-row.tbUnknown) // GI-only: static channel
	giBoth := row.giUnknown - giOnly
	uPlain := minInt(giBoth, slUnknown)
	uPlainDeep := giBoth - uPlain
	uIface := maxInt(0, slUnknown-uPlain)
	uDeepIface := maxInt(0, row.tbUnknown-uPlain-uPlainDeep-uIface)
	repeat(giOnly, func() { s.addStaticChannel(CatUnknown) })
	repeat(uPlain, func() { s.addPlain(CatUnknown) })
	repeat(uPlainDeep, func() { s.addPlainDeep(CatUnknown) })
	repeat(uIface, func() { s.addIface(CatUnknown) })
	repeat(uDeepIface, func() { s.addDeepIface(CatUnknown) })

	// --- fakes. Shallow variants are visible to Serianalyzer; when the
	// paper's SL fake count is smaller than the GI/TB fake pools, the
	// surplus switches to deep variants beyond SL's horizon.
	decoys := maxInt(0, row.giFake-row.tbFake)
	condPlain := minInt(row.giFake, row.tbFake)
	condIface := row.tbFake - condPlain
	slNoise := slFake - condPlain - condIface - decoys
	deepDecoys, deepCond := 0, 0
	if slNoise < 0 && !row.slTimeout {
		deficit := -slNoise
		deepDecoys = minInt(decoys, deficit)
		deficit -= deepDecoys
		deepCond = minInt(condPlain, deficit)
	}
	if slNoise < 0 {
		slNoise = 0
	}
	repeat(condPlain-deepCond, func() { s.addCond() })
	repeat(deepCond, func() { s.addCondDeep() })
	repeat(condIface, func() { s.addCondIface() })
	repeat(decoys-deepDecoys, func() { s.addDecoy() })
	repeat(deepDecoys, func() { s.addDecoyDeep() })
	repeat(slNoise, func() { s.addSLNoise() })

	if row.slTimeout {
		s.addExplosionBomb(700)
	}
	return s.build(row.name, row.dataset, row.slTimeout)
}

func repeat(n int, f func()) {
	for i := 0; i < n; i++ {
		f()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// commonsCollectionsFlavor hand-models the classic commons-collections
// Transformer gadget family (InvokerTransformer / LazyMap / TiedMapEntry)
// as one of the component's deep interface chains:
//
//	Holder.readObject → Object.toString ⇝ TiedMapEntry.toString →
//	TiedMapEntry.getValue → Map.get ⇝ LazyMap.get →
//	Transformer.transform ⇝ InvokerTransformer.transform → Method.invoke
func commonsCollectionsFlavor(pkg string) func(*synth) {
	return func(s *synth) {
		src := fmt.Sprintf(`
public interface Transformer {
    Object transform(Object input);
}

public class InvokerTransformer implements Transformer, java.io.Serializable {
    public java.lang.reflect.Method iMethod;
    public Object[] iArgs;
    public Object transform(Object input) {
        return iMethod.invoke(input, this.iArgs);
    }
}

public class ConstantTransformer implements Transformer, java.io.Serializable {
    public Object iConstant;
    public Object transform(Object input) {
        return this.iConstant;
    }
}

public class LazyMap implements java.util.Map, java.io.Serializable {
    public Transformer factory;
    public Object get(Object key) {
        Object value = factory.transform(key);
        return value;
    }
    public Object put(Object key, Object value) {
        return null;
    }
}

public class TiedMapEntry implements java.io.Serializable {
    public java.util.Map map;
    public Object key;
    public String toString() {
        Object v = getValue();
        return null;
    }
    public Object getValue() {
        return map.get(this.key);
    }
}

public class BadValueHolder implements java.io.Serializable {
    public Object valObj;
    private void readObject(java.io.ObjectInputStream in) {
        Object v = this.valObj;
        String out = v.toString();
    }
}
`)
		s.files = append(s.files, javasrc.File{
			Name:   "cc/Transformers.java",
			Source: "package " + pkg + ";\n" + src,
		})
		s.chains = append(s.chains, ChainSpec{
			ID:          "CC-InvokerTransformer",
			Source:      java.MakeMethodKey(pkg+".BadValueHolder", "readObject", []java.Type{java.ClassType("java.io.ObjectInputStream")}),
			SinkClass:   "java.lang.reflect.Method",
			SinkMethod:  "invoke",
			Category:    CatKnown,
			Pattern:     PatternDeepIface,
			ExpectTabby: true,
		})
	}
}

// c3p0Flavor hand-models the classic C3P0 gadget (ysoserial's C3P0
// payload): PoolBackedDataSource.readObject pulls its connection-pool
// indirector, whose getObject() resolves a JNDI reference —
//
//	PoolBackedDataSource.readObject → Indirector.getObject ⇝
//	ReferenceSerialized.getObject → resolve → dereference → fetch →
//	javax.naming.Context.lookup
func c3p0Flavor(s *synth) {
	const pkg = "com.mchange.v2.c3p0"
	src := `
public interface Indirector {
    Object getObject();
}

public class ReferenceSerialized implements Indirector, java.io.Serializable {
    public javax.naming.Context ctx;
    public String contextName;
    public Object getObject() {
        return ReferenceResolver.resolve(this.ctx, this.contextName);
    }
}

public class ReferenceResolver {
    public static Object resolve(javax.naming.Context c, String name) {
        return ReferenceDeref.dereference(c, name);
    }
}

class ReferenceDeref {
    static Object dereference(javax.naming.Context c, String name) {
        return ReferenceFetch.fetch(c, name);
    }
}

class ReferenceFetch {
    static Object fetch(javax.naming.Context c, String name) {
        return c.lookup(name);
    }
}

public class PoolBackedDataSource implements java.io.Serializable {
    public Indirector connectionPoolDataSource;
    private void readObject(java.io.ObjectInputStream ois) {
        Object o = connectionPoolDataSource.getObject();
    }
}
`
	s.files = append(s.files, javasrc.File{
		Name:   "c3p0/PoolBackedDataSource.java",
		Source: "package " + pkg + ";\n" + src,
	})
	s.chains = append(s.chains, ChainSpec{
		ID:          "C3P0-ReferenceIndirector",
		Source:      java.MakeMethodKey(pkg+".PoolBackedDataSource", "readObject", []java.Type{java.ClassType("java.io.ObjectInputStream")}),
		SinkClass:   "javax.naming.Context",
		SinkMethod:  "lookup",
		Category:    CatKnown,
		Pattern:     PatternDeepIface,
		ExpectTabby: true,
	})
}

// commonsBeanutilsFlavor hand-models the CommonsBeanutils1 gadget: the
// runtime's PriorityQueue.readObject → heapify → Comparator.compare
// machinery dispatches into BeanComparator.compare, which reads a bean
// property reflectively and ends at Method.invoke —
//
//	PriorityQueue.readObject → heapify → Comparator.compare ⇝
//	BeanComparator.compare → PropertyUtils.getProperty → resolve →
//	invokeGetter → java.lang.reflect.Method.invoke
func commonsBeanutilsFlavor(s *synth) {
	const pkg = "org.apache.commons.beanutils"
	src := `
public class BeanComparator implements java.util.Comparator, java.io.Serializable {
    public String property;
    public int compare(Object o1, Object o2) {
        Object v1 = PropertyUtils.getProperty(o1, this.property);
        return 0;
    }
}

public class PropertyUtils {
    public static Object getProperty(Object bean, String name) {
        return PropertyResolver.resolve(bean, name);
    }
}

class PropertyResolver {
    static Object resolve(Object bean, String name) {
        return GetterInvoker.invokeGetter(bean, name);
    }
}

class GetterInvoker {
    static Object invokeGetter(Object bean, String name) {
        java.lang.Class k = bean.getClass();
        java.lang.reflect.Method getter = k.getMethod(name);
        return getter.invoke(bean, null);
    }
}
`
	s.files = append(s.files, javasrc.File{
		Name:   "beanutils/BeanComparator.java",
		Source: "package " + pkg + ";\n" + src,
	})
	s.chains = append(s.chains, ChainSpec{
		ID:          "CB1-BeanComparator",
		Source:      java.MakeMethodKey("java.util.PriorityQueue", "readObject", []java.Type{java.ClassType("java.io.ObjectInputStream")}),
		SinkClass:   "java.lang.reflect.Method",
		SinkMethod:  "invoke",
		Category:    CatKnown,
		Pattern:     PatternDeepIface,
		ExpectTabby: true,
	})
}

// PaperExpectation exposes the published Table IX numbers for one
// component, so the bench harness can assert measured-vs-paper fidelity.
type PaperExpectation struct {
	Name    string
	Dataset int

	GIFake, GIKnown, GIUnknown int
	TBFake, TBKnown, TBUnknown int
	SLFake, SLKnown, SLUnknown int
	SLTimeout                  bool
}

// PaperExpectations returns the published Table IX rows.
func PaperExpectations() []PaperExpectation {
	out := make([]PaperExpectation, 0, len(tableIX))
	for _, r := range tableIX {
		out = append(out, PaperExpectation{
			Name: r.name, Dataset: r.dataset,
			GIFake: r.giFake, GIKnown: r.giKnown, GIUnknown: r.giUnknown,
			TBFake: r.tbFake, TBKnown: r.tbKnown, TBUnknown: r.tbUnknown,
			SLFake: r.slFake, SLKnown: r.slKnown, SLUnknown: r.slUnknown,
			SLTimeout: r.slTimeout,
		})
	}
	return out
}
