package corpus

import (
	"fmt"
	"strings"

	"tabby/internal/java"
	"tabby/internal/javasrc"
)

// sinkKind rotates the sink used by synthesized chains so components
// exercise several rows of Table VII.
type sinkKind int

const (
	sinkExec sinkKind = iota // java.lang.Runtime.exec
	sinkJNDI                 // javax.naming.Context.lookup
	sinkSSRF                 // java.net.InetAddress.getByName
)

func (k sinkKind) identity() (class, method string) {
	switch k {
	case sinkJNDI:
		return "javax.naming.Context", "lookup"
	case sinkSSRF:
		return "java.net.InetAddress", "getByName"
	default:
		return "java.lang.Runtime", "exec"
	}
}

// stmt renders the mini-Java statement invoking the sink with variable v.
func (k sinkKind) stmt(v string) string {
	switch k {
	case sinkJNDI:
		return fmt.Sprintf("javax.naming.InitialContext ctx = new javax.naming.InitialContext(); Object r = ctx.lookup(%s);", v)
	case sinkSSRF:
		return fmt.Sprintf("java.net.InetAddress r = java.net.InetAddress.getByName(%s);", v)
	default:
		return fmt.Sprintf("java.lang.Process r = java.lang.Runtime.getRuntime().exec(%s);", v)
	}
}

// synth accumulates synthesized chain sources and their ground truth for
// one component.
type synth struct {
	pkg    string
	n      int
	files  []javasrc.File
	chains []ChainSpec
}

func newSynth(pkg string) *synth { return &synth{pkg: pkg} }

// next allocates a fresh chain prefix ("G7") and sink rotation slot.
func (s *synth) next() (prefix string, sink sinkKind) {
	s.n++
	return fmt.Sprintf("G%d", s.n), sinkKind(s.n % 3)
}

func (s *synth) emit(prefix, source string) {
	s.files = append(s.files, javasrc.File{
		Name:   fmt.Sprintf("%s/%s.java", strings.ReplaceAll(s.pkg, ".", "/"), prefix),
		Source: "package " + s.pkg + ";\n" + source,
	})
}

func (s *synth) record(prefix string, sink sinkKind, cat Category, pat Pattern, tb, gi, sl bool) {
	sc, sm := sink.identity()
	s.chains = append(s.chains, ChainSpec{
		ID:          prefix,
		Source:      java.MakeMethodKey(s.pkg+"."+prefix+"Entry", "readObject", []java.Type{java.ClassType("java.io.ObjectInputStream")}),
		SinkClass:   sc,
		SinkMethod:  sm,
		Category:    cat,
		Pattern:     pat,
		ExpectTabby: tb, ExpectGI: gi, ExpectSL: sl,
	})
}

// entryHeader renders the serializable entry class whose readObject runs
// body (one or more statements able to reference this.cmd).
func entryClass(prefix, fields, body string) string {
	return fmt.Sprintf(`
public class %sEntry implements java.io.Serializable {
    public String cmd;
%s
    private void readObject(java.io.ObjectInputStream s) {
%s
    }
}
`, prefix, fields, body)
}

// addPlain plants a chain found by all three tools:
// Entry.readObject → Helper.run → sink.
func (s *synth) addPlain(cat Category) {
	prefix, sink := s.next()
	src := entryClass(prefix, "", fmt.Sprintf("        %sHelper.run%s(this.cmd);", prefix, prefix)) +
		fmt.Sprintf(`
class %sHelper {
    static void run%s(String c) {
        %s
    }
}
`, prefix, prefix, sink.stmt("c"))
	s.emit(prefix, src)
	s.record(prefix, sink, cat, PatternPlain, true, true, true)
}

// deepHops renders k static relay classes D0..D(k-1); D(k-1) fires the
// sink. Returns the source text and the first hop's call statement.
func deepHops(prefix string, k int, sink sinkKind) (src, firstCall string) {
	var sb strings.Builder
	for i := 0; i < k; i++ {
		var body string
		if i == k-1 {
			body = "        " + sink.stmt("c")
		} else {
			body = fmt.Sprintf("        %sD%d.hop%s(c);", prefix, i+1, prefix)
		}
		fmt.Fprintf(&sb, `
class %sD%d {
    static void hop%s(String c) {
%s
    }
}
`, prefix, i, prefix, body)
	}
	return sb.String(), fmt.Sprintf("%sD0.hop%s(this.cmd);", prefix, prefix)
}

// addPlainDeep plants a chain deeper than Serianalyzer's horizon but with
// no interface pivot, so GadgetInspector and Tabby find it.
func (s *synth) addPlainDeep(cat Category) {
	prefix, sink := s.next()
	hops, first := deepHops(prefix, 7, sink)
	src := entryClass(prefix, "", "        "+first) + hops
	s.emit(prefix, src)
	s.record(prefix, sink, cat, PatternPlainDeep, true, true, false)
}

// addIface plants a chain pivoting through an interface implementation —
// invisible to GadgetInspector's subclass-only dispatch.
func (s *synth) addIface(cat Category) {
	prefix, sink := s.next()
	src := fmt.Sprintf(`
interface %sGadget {
    void fire%s(String c);
}

class %sImpl implements %sGadget, java.io.Serializable {
    public void fire%s(String c) {
        %s
    }
}
`, prefix, prefix, prefix, prefix, prefix, sink.stmt("c")) +
		entryClass(prefix,
			fmt.Sprintf("    public %sGadget g;", prefix),
			fmt.Sprintf("        g.fire%s(this.cmd);", prefix))
	s.emit(prefix, src)
	s.record(prefix, sink, cat, PatternIface, true, false, true)
}

// addDeepIface combines the interface pivot with depth: only Tabby finds
// it.
func (s *synth) addDeepIface(cat Category) {
	prefix, sink := s.next()
	hops, _ := deepHops(prefix, 6, sink)
	src := fmt.Sprintf(`
interface %sGadget {
    void fire%s(String c);
}

class %sImpl implements %sGadget, java.io.Serializable {
    public void fire%s(String c) {
        %sD0.hop%s(c);
    }
}
`, prefix, prefix, prefix, prefix, prefix, prefix, prefix) + hops +
		entryClass(prefix,
			fmt.Sprintf("    public %sGadget g;", prefix),
			fmt.Sprintf("        g.fire%s(this.cmd);", prefix))
	s.emit(prefix, src)
	s.record(prefix, sink, cat, PatternDeepIface, true, false, false)
}

// addProxy plants an effective chain whose pivot is a dynamic-proxy
// dispatch — invisible to every static tool (§V-B).
func (s *synth) addProxy(cat Category) {
	prefix, sink := s.next()
	src := entryClass(prefix,
		"    public Object target;",
		"        java.lang.reflect.Proxy.dispatch(this.target, this.cmd);") +
		fmt.Sprintf(`
class %sRuntimeGadget implements java.io.Serializable {
    public void call%s(String c) {
        %s
    }
}
`, prefix, prefix, sink.stmt("c"))
	s.emit(prefix, src)
	s.record(prefix, sink, cat, PatternProxy, false, false, false)
}

// addStaticChannel plants an effective chain where data flows through a
// static field across two calls: Tabby's per-method static tracking
// loses it; GadgetInspector's optimism keeps it.
func (s *synth) addStaticChannel(cat Category) {
	prefix, sink := s.next()
	src := entryClass(prefix, "", fmt.Sprintf(
		"        %sReg.store%s(this.cmd);\n        %sReg.flush%s(this.cmd);",
		prefix, prefix, prefix, prefix)) +
		fmt.Sprintf(`
class %sReg {
    static String slot;

    static void store%s(String c) {
        %sReg.slot = c;
    }
    static void flush%s(String unused) {
        String c = %sReg.slot;
        %s
    }
}
`, prefix, prefix, prefix, prefix, prefix, sink.stmt("c"))
	s.emit(prefix, src)
	s.record(prefix, sink, cat, PatternStaticChannel, false, true, true)
}

// addCond plants a fake chain guarded by a dead condition; every
// flow-insensitive tool reports it (the paper's main Tabby FP source,
// §IV-E).
func (s *synth) addCond() {
	prefix, sink := s.next()
	src := entryClass(prefix, "", fmt.Sprintf(`        int gate = 7;
        if (gate == 8) {
            %sCHelper.check%s(this.cmd);
        }`, prefix, prefix)) +
		fmt.Sprintf(`
class %sCHelper {
    static void check%s(String c) {
        %s
    }
}
`, prefix, prefix, sink.stmt("c"))
	s.emit(prefix, src)
	s.record(prefix, sink, CatFake, PatternCond, true, true, true)
}

// addCondIface is a dead-guard fake behind an interface pivot, reported
// by Tabby and Serianalyzer but invisible to GadgetInspector.
func (s *synth) addCondIface() {
	prefix, sink := s.next()
	src := fmt.Sprintf(`
interface %sGadget {
    void fire%s(String c);
}

class %sImpl implements %sGadget, java.io.Serializable {
    public void fire%s(String c) {
        %s
    }
}
`, prefix, prefix, prefix, prefix, prefix, sink.stmt("c")) +
		entryClass(prefix,
			fmt.Sprintf("    public %sGadget g;", prefix),
			fmt.Sprintf(`        int gate = 7;
        if (gate == 8) {
            g.fire%s(this.cmd);
        }`, prefix))
	s.emit(prefix, src)
	s.record(prefix, sink, CatFake, PatternCondIface, true, false, true)
}

// addDecoy plants a fake chain whose data is interprocedurally replaced
// by a constant: Tabby's Action summary prunes it, the baselines report
// it.
func (s *synth) addDecoy() {
	prefix, sink := s.next()
	src := entryClass(prefix, "", fmt.Sprintf(
		"        String c = %sSan.sanitize%s(this.cmd);\n        %sDHelper.go%s(c);",
		prefix, prefix, prefix, prefix)) +
		fmt.Sprintf(`
class %sSan {
    static String sanitize%s(String c) {
        String fixed = "safe-value";
        return fixed;
    }
}

class %sDHelper {
    static void go%s(String c) {
        %s
    }
}
`, prefix, prefix, prefix, prefix, sink.stmt("c"))
	s.emit(prefix, src)
	s.record(prefix, sink, CatFake, PatternDecoy, false, true, true)
}

// addSLNoise plants a fake chain with constant input: only the
// controllability-blind backward search reports it.
func (s *synth) addSLNoise() {
	prefix, sink := s.next()
	src := entryClass(prefix, "", fmt.Sprintf("        %sNHelper.ping%s(\"static-input\");", prefix, prefix)) +
		fmt.Sprintf(`
class %sNHelper {
    static void ping%s(String c) {
        %s
    }
}
`, prefix, prefix, sink.stmt("c"))
	s.emit(prefix, src)
	s.record(prefix, sink, CatFake, PatternSLNoise, false, false, true)
}

// addExplosionBomb embeds a dispatch explosion: one interface with n
// implementations invoked from n distinct call sites. Every input is a
// constant, so controllability pruning (Tabby) and intraprocedural taint
// (GadgetInspector) skip the whole structure — but an unpruned call-graph
// construction must materialize n×n dispatch edges and exhausts its step
// budget, reproducing Serianalyzer's non-termination rows (X).
func (s *synth) addExplosionBomb(n int) {
	prefix, _ := s.next()
	var sb strings.Builder
	fmt.Fprintf(&sb, "\npublic interface %sBoom {\n    void boom%s(String c);\n}\n", prefix, prefix)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `
class %sBoomImpl%d implements %sBoom {
    public void boom%s(String c) {
        java.lang.Process r = java.lang.Runtime.getRuntime().exec("constant");
    }
}
`, prefix, i, prefix, prefix)
	}
	fmt.Fprintf(&sb, "\nclass %sBoomCallers {\n", prefix)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "    static void site%d(%sBoom f) {\n        f.boom%s(\"x\");\n    }\n", i, prefix, prefix)
	}
	fmt.Fprintf(&sb, "}\n")
	s.emit(prefix+"Boom", sb.String())
	// The bomb is not a chain: nothing effective, nothing reported by
	// pruning tools; Serianalyzer never finishes, so no spec is recorded.
}

// build wraps the synthesized files into a Component.
func (s *synth) build(name string, dataset int, slTimeout bool) Component {
	return Component{
		Name:          name,
		Package:       s.pkg,
		DatasetChains: dataset,
		Archives: []javasrc.ArchiveSource{{
			Name:  name + ".jar",
			Files: s.files,
		}},
		Chains:    s.chains,
		SLTimeout: slTimeout,
	}
}

// addCondDeep is a dead-guard fake deeper than Serianalyzer's horizon:
// Tabby and GadgetInspector report it, Serianalyzer does not.
func (s *synth) addCondDeep() {
	prefix, sink := s.next()
	hops, first := deepHops(prefix, 7, sink)
	src := entryClass(prefix, "", fmt.Sprintf(`        int gate = 7;
        if (gate == 8) {
            %s
        }`, first)) + hops
	s.emit(prefix, src)
	s.record(prefix, sink, CatFake, PatternCondDeep, true, true, false)
}

// addDecoyDeep is an interprocedurally sanitized fake behind deep hops:
// only GadgetInspector's optimistic taint reports it.
func (s *synth) addDecoyDeep() {
	prefix, sink := s.next()
	hops, _ := deepHops(prefix, 7, sink)
	src := entryClass(prefix, "", fmt.Sprintf(
		"        String c = %sSan.sanitize%s(this.cmd);\n        %sD0.hop%s(c);",
		prefix, prefix, prefix, prefix)) +
		fmt.Sprintf(`
class %sSan {
    static String sanitize%s(String c) {
        String fixed = "safe-value";
        return fixed;
    }
}
`, prefix, prefix) + hops
	s.emit(prefix, src)
	s.record(prefix, sink, CatFake, PatternDecoyDeep, false, true, false)
}
