package corpus

import (
	"strings"

	"tabby/internal/javasrc"
)

// MutateOneClass returns a copy of archives with one harmless statement
// inserted into the first method body of the first non-bootstrap source
// file — the "one class changed" edit the incremental benchmarks and
// equivalence tests replay. Only the touched archive's file list and the
// touched file are copied; every other archive and source aliases the
// input, exactly like a developer saving one file. ok reports whether an
// insertion point was found.
func MutateOneClass(archives []javasrc.ArchiveSource) (out []javasrc.ArchiveSource, ok bool) {
	out = append([]javasrc.ArchiveSource(nil), archives...)
	for ai, ar := range out {
		if ar.Name == "rt.jar" {
			continue
		}
		for fi, f := range ar.Files {
			i := strings.Index(f.Source, ") {\n")
			if i < 0 {
				continue
			}
			at := i + len(") {\n")
			files := append([]javasrc.File(nil), ar.Files...)
			files[fi].Source = f.Source[:at] + "        String __tabbyIncrProbe = null;\n" + f.Source[at:]
			out[ai].Files = files
			return out, true
		}
	}
	return out, false
}
