package corpus

import (
	"fmt"

	"tabby/internal/java"
	"tabby/internal/jimple"
)

// SyntheticSpec is one row of the Table VIII scaling experiment: the
// paper's jar/class/method/edge counts for a given amount of bytecode.
// The generator reproduces the class/method counts; edge counts emerge
// from the generated call structure.
type SyntheticSpec struct {
	Label         string
	CodeMB        int
	PaperJarCount int
	PaperClasses  int
	PaperMethods  int
	PaperEdges    int
	PaperMinutes  float64
}

// groupSize is how many classes share one interface group in the
// synthetic corpus.
const groupSize = 20

// sinkClassIdx is the in-group class index whose m0 fires the planted
// sink. The planted chain is readObject (class 0) → m0 ring through
// classes 1..sinkClassIdx → Runtime.exec: sinkClassIdx+2 nodes, chosen
// to sit comfortably under the path finder's default MaxDepth of 12.
const sinkClassIdx = 5

// runtimeClass is the phantom sink owner the generator plants chains
// against (Table VII: java.lang.Runtime.exec, TC {1}).
const runtimeClass = "java.lang.Runtime"

// SyntheticPlantedChains reports how many gadget chains GenerateSynthetic
// plants for a spec at a scale: one per group that reaches class index
// sinkClassIdx. A full pipeline run over the generated corpus must detect
// at least this many chains; zero planted chains is impossible (the
// generator floors at one complete group).
func SyntheticPlantedChains(spec SyntheticSpec, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	numClasses := int(float64(spec.PaperClasses) * scale)
	if numClasses < 20 {
		numClasses = 20
	}
	planted := numClasses / groupSize
	if numClasses%groupSize > sinkClassIdx {
		planted++
	}
	return planted
}

// SyntheticSpecs returns the seven rows of Table VIII.
func SyntheticSpecs() []SyntheticSpec {
	return []SyntheticSpec{
		{Label: "10MB", CodeMB: 10, PaperJarCount: 29, PaperClasses: 9055, PaperMethods: 59508, PaperEdges: 189021, PaperMinutes: 1.9},
		{Label: "20MB", CodeMB: 20, PaperJarCount: 63, PaperClasses: 14765, PaperMethods: 107623, PaperEdges: 341111, PaperMinutes: 3.1},
		{Label: "30MB", CodeMB: 30, PaperJarCount: 88, PaperClasses: 21104, PaperMethods: 153653, PaperEdges: 491651, PaperMinutes: 6.0},
		{Label: "40MB", CodeMB: 40, PaperJarCount: 93, PaperClasses: 25532, PaperMethods: 198130, PaperEdges: 628392, PaperMinutes: 9.8},
		{Label: "50MB", CodeMB: 50, PaperJarCount: 95, PaperClasses: 30859, PaperMethods: 249545, PaperEdges: 816421, PaperMinutes: 12.7},
		{Label: "100MB", CodeMB: 100, PaperJarCount: 113, PaperClasses: 32713, PaperMethods: 268670, PaperEdges: 857881, PaperMinutes: 20.1},
		{Label: "150MB", CodeMB: 150, PaperJarCount: 155, PaperClasses: 66247, PaperMethods: 503358, PaperEdges: 1587266, PaperMinutes: 36.3},
	}
}

// GenerateSynthetic builds a program with approximately
// scale×PaperClasses classes and scale×PaperMethods methods, organized
// into PaperJarCount archives. The structure mimics library code: class
// groups share an interface, half the classes override a group method
// (ALIAS edges), every method calls two deterministic peers with
// controllable arguments (CALL edges), and one class per group is a
// serializable readObject source. The last class of every complete
// group fires Runtime.exec with its (controllable) parameter, so each
// complete group's readObject→m0 ring is a real gadget chain — a
// pipeline run over the corpus must find at least
// SyntheticPlantedChains of them, which keeps end-to-end benches from
// silently measuring a chainless search. Generation is deterministic.
func GenerateSynthetic(spec SyntheticSpec, scale float64) (*jimple.Program, error) {
	if scale <= 0 {
		scale = 1
	}
	numClasses := int(float64(spec.PaperClasses) * scale)
	if numClasses < 20 {
		numClasses = 20
	}
	methodsPerClass := spec.PaperMethods / spec.PaperClasses
	if methodsPerClass < 1 {
		methodsPerClass = 1
	}

	objParams := []java.Type{java.ObjectType}
	runtimeType := java.ClassType(runtimeClass)

	classes := make([]*java.Class, 0, numClasses+numClasses/groupSize+1)
	numGroups := (numClasses + groupSize - 1) / groupSize
	className := func(group, idx int) string {
		return fmt.Sprintf("synth.g%d.C%d", group, idx)
	}
	methodName := func(i int) string { return fmt.Sprintf("m%d", i) }

	// Interfaces: one per group, declaring the group's shared method.
	for g := 0; g < numGroups; g++ {
		iface := &java.Class{
			Name:      fmt.Sprintf("synth.g%d.Iface", g),
			Modifiers: java.ModPublic | java.ModInterface | java.ModAbstract,
		}
		iface.AddMethod(&java.Method{
			Name: "shared", Params: objParams, Return: java.ObjectType,
			Modifiers: java.ModPublic | java.ModAbstract,
		})
		classes = append(classes, iface)
	}

	total := 0
	for g := 0; g < numGroups && total < numClasses; g++ {
		for i := 0; i < groupSize && total < numClasses; i++ {
			c := &java.Class{Name: className(g, i), Modifiers: java.ModPublic}
			if i%3 == 1 {
				// A third of the classes extend their group predecessor.
				c.Super = className(g, i-1)
			} else {
				c.Super = java.ObjectClass
			}
			if i%2 == 0 {
				c.Interfaces = append(c.Interfaces, fmt.Sprintf("synth.g%d.Iface", g))
				c.AddMethod(&java.Method{
					Name: "shared", Params: objParams, Return: java.ObjectType,
					Modifiers: java.ModPublic,
				})
			}
			if i == 0 {
				c.Interfaces = append(c.Interfaces, java.SerializableIface)
				c.AddMethod(&java.Method{
					Name:      "readObject",
					Params:    []java.Type{java.ClassType("java.io.ObjectInputStream")},
					Return:    java.Void,
					Modifiers: java.ModPrivate,
				})
			}
			c.AddField(&java.Field{Name: "next", Type: java.ObjectType})
			for m := 0; m < methodsPerClass; m++ {
				c.AddMethod(&java.Method{
					Name: methodName(m), Params: objParams, Return: java.ObjectType,
					Modifiers: java.ModPublic,
				})
			}
			classes = append(classes, c)
			total++
		}
	}

	h, err := java.NewHierarchy(classes)
	if err != nil {
		return nil, fmt.Errorf("synthetic: %w", err)
	}
	prog := jimple.NewProgram(h)

	// Bodies: each method calls the same-index method of the next class
	// in the group (controllable arg), and every third also calls the
	// group interface's shared method.
	for g := 0; g < numGroups; g++ {
		ifaceName := fmt.Sprintf("synth.g%d.Iface", g)
		for i := 0; i < groupSize; i++ {
			c := h.Class(className(g, i))
			if c == nil {
				continue
			}
			nextClass := className(g, (i+1)%groupSize)
			if h.Class(nextClass) == nil {
				nextClass = className(g, 0)
			}
			for _, m := range c.Methods {
				if m.IsAbstract() {
					continue
				}
				bb := jimple.NewBodyBuilder(m)
				switch m.Name {
				case "readObject":
					v := bb.Temp(java.ObjectType)
					bb.FieldLoad(v, bb.This(), c.Name, "next", java.ObjectType)
					bb.AssignInvokeVirtual(bb.Temp(java.ObjectType), bb.This(), nextClass, "m0", objParams, java.ObjectType, v)
					bb.Return(nil)
				case "shared":
					bb.Return(bb.Param(0))
				default:
					if m.Name == "m0" && i == sinkClassIdx {
						// The chain planted by readObject ends here, in a
						// real Table VII sink with a controllable arg.
						rt := bb.Temp(runtimeType)
						bb.AssignInvokeStatic(rt, runtimeClass, "getRuntime", nil, runtimeType)
						bb.InvokeVirtual(rt, runtimeClass, "exec", objParams, java.ObjectType, bb.Param(0))
					}
					ret := bb.Temp(java.ObjectType)
					bb.AssignInvokeVirtual(ret, bb.This(), nextClass, m.Name, objParams, java.ObjectType, bb.Param(0))
					if hashString(m.Name+c.Name)%3 == 0 {
						bb.AssignInvokeVirtual(bb.Temp(java.ObjectType), bb.This(), ifaceName, "shared", objParams, java.ObjectType, bb.Param(0))
					}
					bb.Return(ret)
				}
				prog.SetBody(bb.Body())
			}
		}
	}
	// Archives: split classes evenly into the paper's jar count.
	jarCount := spec.PaperJarCount
	if jarCount < 1 {
		jarCount = 1
	}
	names := h.SortedClassNames()
	perJar := (len(names) + jarCount - 1) / jarCount
	for j := 0; j < jarCount; j++ {
		lo := j * perJar
		if lo >= len(names) {
			break
		}
		hi := lo + perJar
		if hi > len(names) {
			hi = len(names)
		}
		prog.Archives = append(prog.Archives, java.Archive{
			Name:      fmt.Sprintf("synth-%s-%d.jar", spec.Label, j),
			Classes:   names[lo:hi],
			CodeBytes: int64(spec.CodeMB) * 1024 * 1024 / int64(jarCount),
		})
	}
	return prog, nil
}

func hashString(s string) int {
	h := 0
	for _, r := range s {
		h = h*31 + int(r)
	}
	if h < 0 {
		h = -h
	}
	return h
}
