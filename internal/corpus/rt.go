// Package corpus provides the evaluation substrate of the reproduction:
// a mini-Java model of the JDK runtime subset that gadget chains traverse
// (this file), hand-modelled and synthesized components mirroring the 26
// ysoserial/marshalsec components of Table IX, the development scenes of
// Table X, and a scalable synthetic-archive generator for the Table VIII
// timing experiment.
//
// The paper analyzed real Jar files; this package substitutes semantically
// equivalent mini-Java sources whose call/alias/controllability structure
// reproduces the gadget-relevant behaviour (see DESIGN.md §2).
package corpus

import "tabby/internal/javasrc"

// RT returns the runtime archive ("rt.jar"): the JDK subset every
// component compiles against. It contains the URLDNS gadget machinery of
// paper Fig. 3/4 verbatim, the sink-declaring classes of Table VII, and
// the collection/reflection scaffolding the components use.
func RT() javasrc.ArchiveSource {
	return javasrc.ArchiveSource{
		Name: "rt.jar",
		Files: []javasrc.File{
			{Name: "rt/lang.java", Source: _rtLang},
			{Name: "rt/io.java", Source: _rtIO},
			{Name: "rt/net.java", Source: _rtNet},
			{Name: "rt/util.java", Source: _rtUtil},
			{Name: "rt/naming.java", Source: _rtNaming},
			{Name: "rt/reflect.java", Source: _rtReflect},
			{Name: "rt/xml.java", Source: _rtXML},
			{Name: "rt/sql.java", Source: _rtSQL},
		},
	}
}

const _rtLang = `
package java.lang;

public class Object {
    public int hashCode() { return 0; }
    public boolean equals(Object other) { return false; }
    public String toString() { return null; }
}

public class String implements java.io.Serializable, Comparable {
    public String toString() { return this; }
    public int length() { return 0; }
    public int compareTo(Object other) { return 0; }
    public boolean equals(Object other) { return false; }
    public int hashCode() { return 0; }
}

public interface Comparable {
    int compareTo(Object other);
}

public class Class implements java.io.Serializable {
    public String name;
    public static Class forName(String name) { return null; }
    public Object newInstance() { return null; }
    public java.lang.reflect.Method getMethod(String name) { return null; }
    public String getName() { return this.name; }
}

public class Runtime {
    public static Runtime getRuntime() { return null; }
    public Process exec(String command) { return null; }
}

public class Process {
}

public class ProcessBuilder {
    public String[] command;
    public ProcessBuilder(String[] command) { this.command = command; }
    public Process start() { return null; }
}

public class ProcessImpl {
    public static Process start(String[] cmdarray) { return null; }
}

public class ClassLoader {
    public Class loadClass(String name) { return null; }
    public Class defineClass(byte[] code) { return null; }
}

public class System {
    public static void loadLibrary(String name) { }
}

public class Thread {
    public void run() { }
}

public class Throwable implements java.io.Serializable {
    public String message;
    public String getMessage() { return this.message; }
}

public class Exception extends Throwable {
    public Exception(String message) { this.message = message; }
}

public class RuntimeException extends Exception {
    public RuntimeException(String message) { this.message = message; }
}

public class StringBuilder {
    public String buf;
    public StringBuilder append(String part) { this.buf = this.buf + part; return this; }
    public String toString() { return this.buf; }
}
`

const _rtIO = `
package java.io;

public interface Serializable {
}

public interface Externalizable extends Serializable {
    void writeExternal(java.io.ObjectOutput out);
    void readExternal(java.io.ObjectInput in);
}

public interface ObjectInput {
    Object readObject();
}

public interface ObjectOutput {
    void writeObject(Object obj);
}

public class ObjectInputStream implements ObjectInput {
    public Object content;
    public Object readObject() { return this.content; }
    public void defaultReadObject() { }
    public java.io.GetField readFields() { return null; }
}

public class GetField {
    public Object get(String name, Object def) { return null; }
}

public class File implements Serializable {
    public String path;
    public File(String path) { this.path = path; }
    public boolean delete() { return false; }
    public boolean renameTo(java.io.File dest) { return false; }
    public String getPath() { return this.path; }
}

public class FileOutputStream {
    public FileOutputStream(java.io.File file) { }
    public void write(byte[] data) { }
}

public class InputStream {
    public int read() { return 0; }
}

public class PrintStream {
    public void println(String line) { }
}
`

const _rtNet = `
package java.net;

import java.io.Serializable;

public class InetAddress implements Serializable {
    public static InetAddress getByName(String host) { return null; }
}

public class URLStreamHandler {
    protected int hashCode(java.net.URL u) {
        java.net.InetAddress addr = getHostAddress(u);
        return 0;
    }
    protected java.net.InetAddress getHostAddress(java.net.URL u) {
        return java.net.InetAddress.getByName(u.host);
    }
    protected boolean equals(java.net.URL u1, java.net.URL u2) {
        java.net.InetAddress a = getHostAddress(u1);
        return false;
    }
}

public class URL implements Serializable {
    public String host;
    public java.net.URLStreamHandler handler;
    public URL(String spec) { this.host = spec; }
    public int hashCode() {
        return handler.hashCode(this);
    }
    public String getHost() { return this.host; }
    public Object openConnection() { return null; }
    public java.io.InputStream openStream() { return null; }
}

public class Socket {
    public void connect(Object endpoint) { }
}

public class URLClassLoader extends java.lang.ClassLoader {
    public static java.net.URLClassLoader newInstance(java.net.URL[] urls) { return null; }
}
`

const _rtUtil = `
package java.util;

import java.io.Serializable;
import java.io.ObjectInputStream;

public interface Map {
    Object get(Object key);
    Object put(Object key, Object value);
}

public interface List {
    Object get(int index);
    boolean add(Object element);
}

public interface Iterator {
    boolean hasNext();
    Object next();
}

public interface Comparator {
    int compare(Object a, Object b);
}

public class AbstractMap implements Map {
    public Object get(Object key) { return null; }
    public Object put(Object key, Object value) { return null; }
}

public class HashMap extends AbstractMap implements Serializable {
    public Object keyStore;
    private void readObject(ObjectInputStream s) {
        Object key = this.keyStore;
        int h = hash(key);
    }
    static int hash(Object key) {
        return key.hashCode();
    }
    public Object get(Object key) { return null; }
}

public class Hashtable extends AbstractMap implements Serializable {
    public Object keyStore;
    private void readObject(ObjectInputStream s) {
        Object key = this.keyStore;
        boolean eq = reconstitutionPut(key);
    }
    private boolean reconstitutionPut(Object key) {
        return key.equals(key);
    }
}

public class EnumMap extends AbstractMap implements Serializable {
    public int hashCode() {
        return entryHashCode();
    }
    int entryHashCode() { return 0; }
}

public class ArrayList implements List, Serializable {
    public Object[] elements;
    public Object get(int index) { return this.elements[index]; }
    public boolean add(Object element) { return false; }
}

public class PriorityQueue implements Serializable {
    public Object[] queue;
    public java.util.Comparator comparator;
    private void readObject(ObjectInputStream s) {
        heapify();
    }
    void heapify() {
        Object a = this.queue[0];
        Object b = this.queue[1];
        int c = comparator.compare(a, b);
    }
}

public class TreeMap extends AbstractMap implements Serializable {
    public Comparable rootKey;
    private void readObject(ObjectInputStream s) {
        buildFromSorted();
    }
    void buildFromSorted() {
        Comparable k = this.rootKey;
        int c = k.compareTo(k);
    }
}

public class Properties extends Hashtable {
    public String getProperty(String key) { return null; }
}
`

const _rtNaming = `
package javax.naming;

public interface Context {
    Object lookup(String name);
}

public class InitialContext implements Context {
    public Object lookup(String name) { return null; }
    public static Object doLookup(String name) { return null; }
}
`

const _rtReflect = `
package java.lang.reflect;

public class Method {
    public String name;
    public Object invoke(Object target, Object[] args) { return null; }
    public String getName() { return this.name; }
}

public class Proxy {
    public java.lang.reflect.InvocationHandler h;
    public static Object newProxyInstance(java.lang.reflect.InvocationHandler handler) { return null; }
}

public interface InvocationHandler {
    Object invoke(Object proxy, java.lang.reflect.Method method, Object[] args);
}
`

const _rtXML = `
package javax.xml.parsers;

public class DocumentBuilder {
    public Object parse(String uri) { return null; }
}

public class SAXParser {
    public void parse(String uri) { }
}
`

const _rtSQL = `
package javax.sql;

public interface DataSource {
    Object getConnection();
}
`
