package corpus

import (
	"tabby/internal/java"
	"tabby/internal/javasrc"
)

// Category is the ground-truth classification of a planted chain.
type Category string

// Chain categories, matching the columns of Table IX.
const (
	// CatKnown is an effective chain recorded in the ysoserial/marshalsec
	// dataset ("Known in dataset").
	CatKnown Category = "known"
	// CatUnknown is an effective chain not in the dataset.
	CatUnknown Category = "unknown"
	// CatFake is a chain whose static path exists but which cannot
	// actually be triggered (dead guard, sanitized data, constant input).
	CatFake Category = "fake"
)

// Pattern names the structural template a chain was planted with; each
// template is designed to be found by a specific subset of the three
// tools (see DESIGN.md §3 and the synth* functions).
type Pattern string

// Planted chain patterns.
const (
	PatternPlain         Pattern = "plain"          // found by Tabby, GI, SL
	PatternPlainDeep     Pattern = "plain-deep"     // Tabby, GI (SL depth horizon)
	PatternIface         Pattern = "iface"          // Tabby, SL (GI lacks interface dispatch)
	PatternDeepIface     Pattern = "deep-iface"     // Tabby only
	PatternProxy         Pattern = "proxy"          // nobody (dynamic proxy, §V-B)
	PatternStaticChannel Pattern = "static-channel" // GI, SL (Tabby's per-method statics)
	PatternCond          Pattern = "cond"           // fake: all three (dead guard)
	PatternCondIface     Pattern = "cond-iface"     // fake: Tabby, SL
	PatternDecoy         Pattern = "decoy"          // fake: GI, SL (interprocedural sanitizer)
	PatternSLNoise       Pattern = "sl-noise"       // fake: SL only (constant input)
	PatternCondDeep      Pattern = "cond-deep"      // fake: Tabby, GI (beyond SL depth)
	PatternDecoyDeep     Pattern = "decoy-deep"     // fake: GI only
)

// ChainSpec is the ground-truth record for one planted chain.
type ChainSpec struct {
	// ID is unique within the component.
	ID string
	// Source is the entry method of the chain.
	Source java.MethodKey
	// SinkClass/SinkMethod identify the sink endpoint in registry terms.
	SinkClass  string
	SinkMethod string
	// Category is the ground truth; Effective is true for known/unknown.
	Category Category
	Pattern  Pattern
	// ExpectTabby/GI/SL record the designed findability, used by the
	// corpus self-tests.
	ExpectTabby bool
	ExpectGI    bool
	ExpectSL    bool
}

// Effective reports whether the chain is actually triggerable.
func (c ChainSpec) Effective() bool { return c.Category != CatFake }

// Component is one evaluation component of Table IX: its archives (to be
// compiled together with RT()) and the ground-truth manifest.
type Component struct {
	Name    string
	Package string
	// DatasetChains is the paper's "Known in dataset" column.
	DatasetChains int
	Archives      []javasrc.ArchiveSource
	Chains        []ChainSpec
	// SLTimeout marks components on which Serianalyzer fails to
	// terminate (the paper's X entries); they embed a path-explosion
	// clique that only unpruned backward search falls into.
	SLTimeout bool
}

// CountByCategory tallies planted chains per category.
func (c *Component) CountByCategory() map[Category]int {
	out := make(map[Category]int, 3)
	for _, ch := range c.Chains {
		out[ch.Category]++
	}
	return out
}
