package interp

import (
	"strings"
	"testing"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

func chainsFor(t *testing.T, sources ...string) (chains [][]string, progOwner *core.Report) {
	t.Helper()
	archives := []javasrc.ArchiveSource{corpus.RT()}
	for i, src := range sources {
		archives = append(archives, javasrc.ArchiveSource{
			Name:  "t.jar",
			Files: []javasrc.File{{Name: "t.java", Source: src}},
		})
		_ = i
	}
	engine := core.New(core.Options{})
	rep, err := engine.AnalyzeSources(archives)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Chains {
		chains = append(chains, c.Names)
	}
	return chains, rep
}

func findChain(chains [][]string, sourcePrefix string) []string {
	for _, c := range chains {
		if strings.HasPrefix(c[0], sourcePrefix) {
			return c
		}
	}
	return nil
}

func TestConfirmURLDNS(t *testing.T) {
	chains, rep := chainsFor(t)
	chain := findChain(chains, "java.util.HashMap#readObject")
	if chain == nil {
		t.Fatal("URLDNS chain not reported")
	}
	res, err := Confirm(rep.Graph.Program, chain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("URLDNS must confirm; tried %d payloads, failures %v", res.PayloadsTried, res.FailureModes)
	}
	if res.Hit == nil || res.Hit.Sink.Key() != "java.net.InetAddress.getByName" {
		t.Fatalf("hit = %+v", res.Hit)
	}
	// The firing argument must be the attacker's tainted host string.
	tainted := false
	for _, a := range res.Hit.Args {
		if strings.Contains(a, "attacker-data") {
			tainted = true
		}
	}
	if !tainted {
		t.Errorf("sink fired without attacker data: %v", res.Hit.Args)
	}
}

func TestConfirmPlainChain(t *testing.T) {
	chains, rep := chainsFor(t, `
package t;
public class Entry implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) {
        Helper.run(this.cmd);
    }
}
class Helper {
    static void run(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
`)
	chain := findChain(chains, "t.Entry#readObject")
	if chain == nil {
		t.Fatal("chain not reported")
	}
	res, err := Confirm(rep.Graph.Program, chain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("plain chain must confirm: %v", res.FailureModes)
	}
}

func TestConfirmRejectsDeadGuard(t *testing.T) {
	// The flow-insensitive static analysis reports this chain; concrete
	// execution must refuse to confirm it — the paper's §IV-E false
	// positive class, resolved by the §V-C extension.
	chains, rep := chainsFor(t, `
package t;
public class Entry implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) {
        int gate = 7;
        if (gate == 8) {
            Helper.run(this.cmd);
        }
    }
}
class Helper {
    static void run(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
`)
	chain := findChain(chains, "t.Entry#readObject")
	if chain == nil {
		t.Fatal("static analysis must still report the dead-guard chain")
	}
	res, err := Confirm(rep.Graph.Program, chain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confirmed {
		t.Fatal("dead-guard chain must NOT confirm")
	}
	if res.FailureModes["completed"] == 0 {
		t.Errorf("expected clean completions, got %v", res.FailureModes)
	}
}

func TestConfirmRejectsSanitized(t *testing.T) {
	// GI-style tools report this; Tabby prunes it statically. Feed the
	// chain shape to the confirmer directly to show dynamic rejection too.
	chains, rep := chainsFor(t, `
package t;
public class Entry implements java.io.Serializable {
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) {
        String c = San.clean(this.cmd);
        Helper.run(c);
    }
}
class San {
    static String clean(String c) { String fixed = "safe"; return fixed; }
}
class Helper {
    static void run(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
`)
	if findChain(chains, "t.Entry#readObject") != nil {
		t.Fatal("tabby must prune the sanitized chain statically")
	}
	// Hand the would-be chain to the confirmer anyway.
	syntheticChain := []string{
		"t.Entry#readObject(java.io.ObjectInputStream)",
		"t.Helper#run(java.lang.String)",
		"java.lang.Runtime#exec(java.lang.String)",
	}
	res, err := Confirm(rep.Graph.Program, syntheticChain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confirmed {
		t.Fatal("sanitized chain must NOT confirm (exec sees the constant)")
	}
}

func TestConfirmInterfaceDispatch(t *testing.T) {
	chains, rep := chainsFor(t, `
package t;
interface Gadget { void fire(String c); }
class Impl implements Gadget, java.io.Serializable {
    public void fire(String c) {
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(c);
    }
}
public class Entry implements java.io.Serializable {
    public Gadget g;
    public String cmd;
    private void readObject(java.io.ObjectInputStream s) {
        g.fire(this.cmd);
    }
}
`)
	chain := findChain(chains, "t.Entry#readObject")
	if chain == nil {
		t.Fatal("interface chain not reported")
	}
	res, err := Confirm(rep.Graph.Program, chain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("interface chain must confirm (payload builder must pick Impl): %v", res.FailureModes)
	}
}

func TestConfirmFig1(t *testing.T) {
	chains, rep := chainsFor(t, `
package fig1;
public class EvilObjectA implements java.io.Serializable {
    public Object val1;
    private void readObject(java.io.ObjectInputStream is) {
        java.io.GetField gf = is.readFields();
        Object valObj = gf.get("val1", null);
        String out = valObj.toString();
    }
}
public class EvilObjectB implements java.io.Serializable {
    public Object val2;
    public String toString() {
        String cmd = val2.toString();
        java.lang.Process p = java.lang.Runtime.getRuntime().exec(cmd);
        return cmd;
    }
}
`)
	chain := findChain(chains, "fig1.EvilObjectA#readObject")
	if chain == nil {
		t.Fatal("Fig. 1 chain not reported")
	}
	res, err := Confirm(rep.Graph.Program, chain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("Fig. 1 chain must confirm (readFields/GetField intrinsics): %v", res.FailureModes)
	}
}

func TestConfirmErrorCases(t *testing.T) {
	_, rep := chainsFor(t)
	prog := rep.Graph.Program
	if _, err := Confirm(prog, []string{"only-one"}, Options{}); err == nil {
		t.Error("short chain must error")
	}
	if _, err := Confirm(prog, []string{"ghost.C#m()", "java.lang.Runtime#exec(java.lang.String)"}, Options{}); err == nil {
		t.Error("unknown source must error")
	}
	if _, err := Confirm(prog, []string{
		"java.util.HashMap#readObject(java.io.ObjectInputStream)",
		"java.util.HashMap#hash(java.lang.Object)", // not a sink
	}, Options{}); err == nil {
		t.Error("non-sink tail must error")
	}
}
