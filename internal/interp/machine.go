package interp

import (
	"errors"
	"fmt"

	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/sinks"
)

// Hit records a confirmed sink firing.
type Hit struct {
	// Sink is the matched registry entry.
	Sink sinks.Sink
	// Caller is the method whose body invoked the sink.
	Caller java.MethodKey
	// Args renders the receiver and arguments at the moment of firing.
	Args []string
}

// sentinel errors controlling execution.
var (
	errConfirmed = errors.New("sink confirmed")
	errSteps     = errors.New("step budget exhausted")
	errDepth     = errors.New("call depth exhausted")
	errNPE       = errors.New("null dereference")
	errThrown    = errors.New("exception thrown")
)

// machine executes jimple bodies concretely.
type machine struct {
	prog     *jimple.Program
	reg      *sinks.Registry
	payload  *Obj // object under deserialization (GetField intrinsics)
	statics  map[string]Value
	steps    int
	maxSteps int
	maxDepth int
	// wantSink restricts confirmation to the chain's own sink identity
	// (sinks.Sink.Key() form); other registered sinks are inert.
	wantSink string
	hit      *Hit
}

func newMachine(prog *jimple.Program, reg *sinks.Registry, payload *Obj) *machine {
	return &machine{
		prog:     prog,
		reg:      reg,
		payload:  payload,
		statics:  make(map[string]Value),
		maxSteps: 200_000,
		maxDepth: 128,
	}
}

// runtimeClass returns the dynamic class of a value for dispatch.
func runtimeClass(v Value) string {
	switch t := v.(type) {
	case *Obj:
		return t.Class
	case Str:
		return "java.lang.String"
	case ClassRef:
		return "java.lang.Class"
	case MethodRef:
		return "java.lang.reflect.Method"
	case *Arr:
		return java.ObjectClass
	default:
		return ""
	}
}

// call executes the body of m on receiver recv with args. Missing bodies
// return null.
func (ma *machine) call(target *java.Method, recv Value, args []Value, depth int) (Value, error) {
	if depth > ma.maxDepth {
		return Null{}, errDepth
	}
	body := ma.prog.Body(target.Key())
	if body == nil {
		return Null{}, nil
	}
	env := make(map[string]Value, len(body.Locals))
	pc := 0
	for {
		if pc < 0 || pc >= len(body.Stmts) {
			return Null{}, nil // fell off the end (void)
		}
		ma.steps++
		if ma.steps > ma.maxSteps {
			return Null{}, errSteps
		}
		switch st := body.Stmts[pc].(type) {
		case *jimple.IdentityStmt:
			switch rhs := st.RHS.(type) {
			case *jimple.ThisRef:
				env[st.Local.Name] = recv
			case *jimple.ParamRef:
				if rhs.Index < len(args) {
					env[st.Local.Name] = args[rhs.Index]
				} else {
					env[st.Local.Name] = Null{}
				}
			}
			pc++
		case *jimple.AssignStmt:
			rhs, err := ma.eval(body, st.RHS, env, depth)
			if err != nil {
				return Null{}, err
			}
			if err := ma.store(st.LHS, rhs, env); err != nil {
				return Null{}, err
			}
			pc++
		case *jimple.InvokeStmt:
			if _, err := ma.invoke(body, st.Invoke, env, depth); err != nil {
				return Null{}, err
			}
			pc++
		case *jimple.ReturnStmt:
			if st.Op == nil {
				return Null{}, nil
			}
			return ma.eval(body, st.Op, env, depth)
		case *jimple.IfStmt:
			cond, err := ma.eval(body, st.Cond, env, depth)
			if err != nil {
				return Null{}, err
			}
			if truthy(cond) {
				pc = st.Target
			} else {
				pc++
			}
		case *jimple.GotoStmt:
			pc = st.Target
		case *jimple.SwitchStmt:
			key, err := ma.eval(body, st.Key, env, depth)
			if err != nil {
				return Null{}, err
			}
			pc = st.Default
			if k, ok := key.(Int); ok && int(k.V) >= 0 && int(k.V) < len(st.Targets) {
				pc = st.Targets[k.V]
			}
		case *jimple.ThrowStmt:
			return Null{}, errThrown
		case *jimple.NopStmt:
			pc++
		default:
			return Null{}, fmt.Errorf("interp: unsupported statement %T", st)
		}
	}
}

// store writes an assignment target.
func (ma *machine) store(lhs jimple.Value, v Value, env map[string]Value) error {
	switch t := lhs.(type) {
	case *jimple.Local:
		env[t.Name] = v
	case *jimple.FieldRef:
		if t.IsStatic() {
			ma.statics[t.Class+"."+t.Field] = v
			return nil
		}
		base := env[t.Base.Name]
		obj, ok := base.(*Obj)
		if !ok {
			return errNPE
		}
		obj.SetField(t.Field, v)
	case *jimple.ArrayRef:
		base := env[t.Base.Name]
		arr, ok := base.(*Arr)
		if !ok {
			return errNPE
		}
		idx := int64(0)
		if iv, err := ma.eval(nil, t.Index, env, 0); err == nil {
			if n, ok := iv.(Int); ok {
				idx = n.V
			}
		}
		if idx < 0 || int(idx) >= len(arr.Elems) {
			return errThrown // out of bounds
		}
		arr.Elems[idx] = v
	default:
		return fmt.Errorf("interp: unsupported store target %T", lhs)
	}
	return nil
}

// eval computes a jimple value concretely.
func (ma *machine) eval(body *jimple.Body, v jimple.Value, env map[string]Value, depth int) (Value, error) {
	switch t := v.(type) {
	case *jimple.Local:
		if val, ok := env[t.Name]; ok {
			return val, nil
		}
		return Null{}, nil
	case *jimple.IntConst:
		return Int{V: t.Val}, nil
	case *jimple.StrConst:
		return Str{V: t.Val}, nil
	case *jimple.NullConst:
		return Null{}, nil
	case *jimple.ClassConst:
		return ClassRef{Name: t.ClassName}, nil
	case *jimple.NewExpr:
		return &Obj{Class: t.Typ.Name}, nil
	case *jimple.NewArrayExpr:
		size := int64(2)
		if sv, err := ma.eval(body, t.Size, env, depth); err == nil {
			if n, ok := sv.(Int); ok && n.V >= 0 && n.V < 64 {
				size = n.V
			}
		}
		elems := make([]Value, size)
		for i := range elems {
			elems[i] = Null{}
		}
		return &Arr{Elems: elems}, nil
	case *jimple.CastExpr:
		return ma.eval(body, t.Op, env, depth)
	case *jimple.FieldRef:
		if t.IsStatic() {
			if val, ok := ma.statics[t.Class+"."+t.Field]; ok {
				return val, nil
			}
			return Null{}, nil
		}
		base := env[t.Base.Name]
		obj, ok := base.(*Obj)
		if !ok {
			if isNull(base) {
				return Null{}, errNPE
			}
			return Null{}, nil
		}
		return obj.Field(t.Field), nil
	case *jimple.ArrayRef:
		base := env[t.Base.Name]
		arr, ok := base.(*Arr)
		if !ok {
			return Null{}, errNPE
		}
		iv, err := ma.eval(body, t.Index, env, depth)
		if err != nil {
			return Null{}, err
		}
		n, ok := iv.(Int)
		if !ok || n.V < 0 || int(n.V) >= len(arr.Elems) {
			return Null{}, errThrown
		}
		if arr.Elems[n.V] == nil {
			return Null{}, nil
		}
		return arr.Elems[n.V], nil
	case *jimple.BinopExpr:
		return ma.evalBinop(body, t, env, depth)
	case *jimple.InstanceOfExpr:
		inner, err := ma.eval(body, t.Op, env, depth)
		if err != nil {
			return Null{}, err
		}
		rc := runtimeClass(inner)
		if rc == "" {
			return Int{V: 0}, nil
		}
		if ma.prog.Hierarchy.IsSubtypeOf(rc, t.Check.Name) {
			return Int{V: 1}, nil
		}
		return Int{V: 0}, nil
	case *jimple.InvokeExpr:
		return ma.invoke(body, t, env, depth)
	default:
		return Null{}, fmt.Errorf("interp: unsupported value %T", v)
	}
}

func (ma *machine) evalBinop(body *jimple.Body, b *jimple.BinopExpr, env map[string]Value, depth int) (Value, error) {
	l, err := ma.eval(body, b.L, env, depth)
	if err != nil {
		return Null{}, err
	}
	r, err := ma.eval(body, b.R, env, depth)
	if err != nil {
		return Null{}, err
	}
	boolInt := func(cond bool) Value {
		if cond {
			return Int{V: 1}
		}
		return Int{V: 0}
	}
	// String concatenation keeps taint.
	if b.Op == jimple.OpAdd {
		if ls, ok := l.(Str); ok {
			return Str{V: ls.V + stringify(r), Taint: ls.Taint || r.Tainted()}, nil
		}
		if rs, ok := r.(Str); ok {
			return Str{V: stringify(l) + rs.V, Taint: rs.Taint || l.Tainted()}, nil
		}
	}
	li, lInt := l.(Int)
	ri, rInt := r.(Int)
	if lInt && rInt {
		switch b.Op {
		case jimple.OpAdd:
			return Int{V: li.V + ri.V}, nil
		case jimple.OpSub:
			return Int{V: li.V - ri.V}, nil
		case jimple.OpMul:
			return Int{V: li.V * ri.V}, nil
		case jimple.OpDiv:
			if ri.V == 0 {
				return Null{}, errThrown
			}
			return Int{V: li.V / ri.V}, nil
		case jimple.OpEq:
			return boolInt(li.V == ri.V), nil
		case jimple.OpNe:
			return boolInt(li.V != ri.V), nil
		case jimple.OpLt:
			return boolInt(li.V < ri.V), nil
		case jimple.OpLe:
			return boolInt(li.V <= ri.V), nil
		case jimple.OpGt:
			return boolInt(li.V > ri.V), nil
		case jimple.OpGe:
			return boolInt(li.V >= ri.V), nil
		case jimple.OpAnd:
			return boolInt(li.V != 0 && ri.V != 0), nil
		case jimple.OpOr:
			return boolInt(li.V != 0 || ri.V != 0), nil
		}
	}
	switch b.Op {
	case jimple.OpEq:
		return boolInt(refEqual(l, r)), nil
	case jimple.OpNe:
		return boolInt(!refEqual(l, r)), nil
	case jimple.OpAnd:
		return boolInt(truthy(l) && truthy(r)), nil
	case jimple.OpOr:
		return boolInt(truthy(l) || truthy(r)), nil
	default:
		return Int{V: 0}, nil
	}
}

func refEqual(l, r Value) bool {
	if isNull(l) && isNull(r) {
		return true
	}
	if ls, ok := l.(Str); ok {
		rs, ok := r.(Str)
		return ok && ls.V == rs.V
	}
	if li, ok := l.(Int); ok {
		ri, ok := r.(Int)
		return ok && li.V == ri.V
	}
	return l == r // pointer identity for objects/arrays
}

func stringify(v Value) string {
	switch t := v.(type) {
	case Str:
		return t.V
	case Int:
		return fmt.Sprintf("%d", t.V)
	case nil:
		return "null"
	default:
		return t.String()
	}
}
