package interp

import (
	"errors"
	"fmt"

	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/sinks"
)

// Options tunes confirmation.
type Options struct {
	// Registry is the sink registry; nil means the default set.
	Registry *sinks.Registry
	// MaxPayloads caps how many candidate payload graphs are attempted
	// (default 48).
	MaxPayloads int
	// MaxSteps bounds each concrete execution (default 200,000).
	MaxSteps int
}

// Result reports a confirmation attempt.
type Result struct {
	// Confirmed is true when some payload drove execution from the
	// chain's source into its sink with attacker-tainted data at every
	// Trigger_Condition position.
	Confirmed bool
	// Hit describes the sink firing (nil unless Confirmed).
	Hit *Hit
	// PayloadsTried counts candidate object graphs executed.
	PayloadsTried int
	// FailureModes tallies why unconfirmed attempts ended, e.g.
	// "completed" (ran to the end without firing), "null dereference".
	FailureModes map[string]int
}

// Confirm attempts to validate a reported gadget chain (method keys,
// source first) by building payloads and concretely executing the source
// method — the automation the paper proposes as §V-C future work
// (there via javassist + JVMTI; here via the jimple interpreter).
func Confirm(prog *jimple.Program, chain []string, opts Options) (*Result, error) {
	if len(chain) < 2 {
		return nil, fmt.Errorf("interp: chain needs at least source and sink")
	}
	if opts.Registry == nil {
		opts.Registry = sinks.Default()
	}
	if opts.MaxPayloads <= 0 {
		opts.MaxPayloads = 48
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 200_000
	}

	h := prog.Hierarchy
	sourceKey := java.MethodKey(chain[0])
	source := h.MethodByKey(sourceKey)
	if source == nil {
		return nil, fmt.Errorf("interp: unknown source method %s", sourceKey)
	}
	if prog.Body(sourceKey) == nil {
		return nil, fmt.Errorf("interp: source %s has no body", sourceKey)
	}
	sinkKey := java.MethodKey(chain[len(chain)-1])
	wantSink, ok := opts.Registry.Match(h, java.MethodKeyClass(sinkKey), java.MethodKeyName(sinkKey))
	if !ok {
		return nil, fmt.Errorf("interp: chain tail %s is not a registered sink", sinkKey)
	}

	// Hint classes: every class on the chain, in order.
	var hints []string
	for _, name := range chain {
		if c := java.MethodKeyClass(java.MethodKey(name)); c != "" {
			hints = append(hints, c)
		}
	}
	b := newBuilder(h, hints)
	payloads := b.objVariants(source.ClassName, b.maxDepth)
	if len(payloads) > opts.MaxPayloads {
		payloads = payloads[:opts.MaxPayloads]
	}

	res := &Result{FailureModes: make(map[string]int)}
	for _, candidate := range payloads {
		payload, ok := deepCopy(candidate).(*Obj)
		if !ok {
			continue
		}
		res.PayloadsTried++
		ma := newMachine(prog, opts.Registry, payload)
		ma.maxSteps = opts.MaxSteps
		ma.wantSink = wantSink.Key()

		args := make([]Value, len(source.Params))
		for i, p := range source.Params {
			args[i] = streamArg(p)
		}
		_, err := ma.call(source, payload, args, 0)
		switch {
		case errors.Is(err, errConfirmed):
			res.Confirmed = true
			res.Hit = ma.hit
			return res, nil
		case err == nil:
			res.FailureModes["completed"]++
		default:
			res.FailureModes[err.Error()]++
		}
	}
	return res, nil
}

// streamArg builds the framework-supplied argument for a source-method
// parameter (the ObjectInputStream of readObject, etc.) — attacker-
// derived by definition.
func streamArg(t java.Type) Value {
	switch t.Kind {
	case java.KindClass:
		return &Obj{Class: t.Name, Taint: true}
	case java.KindArray:
		return &Arr{Elems: []Value{Null{}, Null{}}, Taint: true}
	default:
		return Int{V: 0}
	}
}

// deepCopy clones a payload graph so one execution cannot pollute the
// next attempt. Builder graphs are trees, so no cycle handling is needed.
func deepCopy(v Value) Value {
	switch t := v.(type) {
	case *Obj:
		out := &Obj{Class: t.Class, Taint: t.Taint}
		for k, fv := range t.Fields {
			out.SetField(k, deepCopy(fv))
		}
		return out
	case *Arr:
		out := &Arr{Elems: make([]Value, len(t.Elems)), Taint: t.Taint}
		for i, e := range t.Elems {
			if e == nil {
				out.Elems[i] = Null{}
				continue
			}
			out.Elems[i] = deepCopy(e)
		}
		return out
	default:
		return v
	}
}
