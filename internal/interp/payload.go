package interp

import (
	"tabby/internal/java"
)

// builder constructs candidate payload object graphs. Field assignment
// backtracks over candidate classes: the classes appearing in the chain
// first (they are what the chain's dispatch steps need), then concrete
// serializable subtypes from the hierarchy.
type builder struct {
	h *java.Hierarchy
	// hints are chain classes in order of appearance.
	hints []string
	// maxVariants caps the per-type variant fan-out.
	maxVariants int
	// maxObjects caps per-object field-combination fan-out.
	maxObjects int
	// maxDepth caps object-graph depth.
	maxDepth int
}

func newBuilder(h *java.Hierarchy, hints []string) *builder {
	return &builder{h: h, hints: hints, maxVariants: 5, maxObjects: 12, maxDepth: 6}
}

// variants returns candidate values for a declared type, most promising
// first. Every reference value is attacker-built, hence tainted.
func (b *builder) variants(t java.Type, depth int, avoid string) []Value {
	switch t.Kind {
	case java.KindClass:
		if t.Name == "java.lang.String" {
			return []Value{Str{V: "attacker-data", Taint: true}}
		}
		var out []Value
		if t.Name == java.ObjectClass {
			// A tainted string is the cheapest useful Object.
			out = append(out, Str{V: "attacker-data", Taint: true})
		}
		for _, cand := range b.candidatesFor(t.Name, avoid) {
			out = append(out, b.objVariants(cand, depth)...)
			if len(out) >= b.maxVariants {
				break
			}
		}
		if len(out) == 0 {
			out = append(out, &Obj{Class: t.Name, Taint: true})
		}
		if len(out) > b.maxVariants {
			out = out[:b.maxVariants]
		}
		return out
	case java.KindArray:
		elemVariants := b.variants(*t.Elem, depth-1, avoid)
		var out []Value
		for _, ev := range elemVariants {
			out = append(out, &Arr{Elems: []Value{ev, ev}, Taint: true})
			if len(out) >= 2 {
				break
			}
		}
		if len(out) == 0 {
			out = append(out, &Arr{Elems: []Value{Null{}, Null{}}, Taint: true})
		}
		return out
	default:
		return []Value{Int{V: 7}}
	}
}

// candidatesFor lists concrete classes assignable to typeName: chain
// hints first, then hierarchy subtypes, then the type itself.
func (b *builder) candidatesFor(typeName, avoid string) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(name string) {
		if seen[name] || name == java.ObjectClass || name == avoid {
			return
		}
		c := b.h.Class(name)
		if c == nil || c.IsInterface() || c.Modifiers.Has(java.ModAbstract) {
			return
		}
		if !b.h.IsSubtypeOf(name, typeName) {
			return
		}
		seen[name] = true
		out = append(out, name)
	}
	for _, hint := range b.hints {
		add(hint)
	}
	add(typeName)
	if typeName != java.ObjectClass {
		for _, sub := range b.h.Subtypes(typeName) {
			add(sub)
			if len(out) >= 6 {
				break
			}
		}
	}
	return out
}

// objVariants builds candidate instances of class, varying the fields
// with multiple candidate values (bounded cartesian product).
func (b *builder) objVariants(class string, depth int) []Value {
	if depth <= 0 {
		return []Value{&Obj{Class: class, Taint: true}}
	}
	type fieldChoice struct {
		name     string
		variants []Value
	}
	var fields []fieldChoice
	// Collect fields through the superclass chain.
	for _, owner := range append([]string{class}, b.h.Superclasses(class)...) {
		c := b.h.Class(owner)
		if c == nil {
			continue
		}
		for _, f := range c.Fields {
			if f.Modifiers.Has(java.ModStatic) {
				continue
			}
			fields = append(fields, fieldChoice{name: f.Name, variants: b.variants(f.Type, depth-1, class)})
		}
	}
	combos := []map[string]Value{{}}
	for _, fc := range fields {
		var next []map[string]Value
		for _, base := range combos {
			for _, v := range fc.variants {
				m := make(map[string]Value, len(base)+1)
				for k, bv := range base {
					m[k] = bv
				}
				m[fc.name] = v
				next = append(next, m)
				if len(next) >= b.maxObjects {
					break
				}
			}
			if len(next) >= b.maxObjects {
				break
			}
		}
		combos = next
	}
	out := make([]Value, 0, len(combos))
	for _, fieldsMap := range combos {
		out = append(out, &Obj{Class: class, Fields: fieldsMap, Taint: true})
	}
	return out
}
