// Package interp implements the extension the paper leaves as future
// work in §V-C: automatically confirming a reported gadget chain by
// constructing a payload object graph and concretely executing the
// deserialization entry point until the sink fires with attacker-tainted
// data.
//
// The interpreter runs the jimple IR with Java-like concrete semantics:
// virtual dispatch by runtime class, concrete branch conditions (so
// dead-guard false positives fail to confirm), and taint markers on every
// value that originates from the attacker-built payload. The payload
// builder backtracks over field assignments, using the classes appearing
// in the chain (plus concrete subtypes from the hierarchy) as candidates.
package interp

import (
	"fmt"
	"strings"
)

// Value is a runtime value.
type Value interface {
	// Tainted reports whether the value derives from attacker data.
	Tainted() bool
	fmt.Stringer
}

// Null is the null reference.
type Null struct{}

// Tainted implements Value.
func (Null) Tainted() bool { return false }

// String implements fmt.Stringer.
func (Null) String() string { return "null" }

// Int is a primitive number (covers boolean/char/long/double widths).
type Int struct{ V int64 }

// Tainted implements Value: primitives cannot carry object graphs.
func (Int) Tainted() bool { return false }

// String implements fmt.Stringer.
func (i Int) String() string { return fmt.Sprintf("%d", i.V) }

// Str is a string value with a taint mark.
type Str struct {
	V     string
	Taint bool
}

// Tainted implements Value.
func (s Str) Tainted() bool { return s.Taint }

// String implements fmt.Stringer.
func (s Str) String() string {
	if s.Taint {
		return fmt.Sprintf("%q*", s.V)
	}
	return fmt.Sprintf("%q", s.V)
}

// Obj is a heap object: runtime class plus fields.
type Obj struct {
	Class  string
	Fields map[string]Value
	Taint  bool
}

// Tainted implements Value.
func (o *Obj) Tainted() bool { return o.Taint }

// String implements fmt.Stringer.
func (o *Obj) String() string {
	mark := ""
	if o.Taint {
		mark = "*"
	}
	return o.Class + "{}" + mark
}

// Field reads a field, defaulting to null.
func (o *Obj) Field(name string) Value {
	if v, ok := o.Fields[name]; ok {
		return v
	}
	return Null{}
}

// SetField writes a field.
func (o *Obj) SetField(name string, v Value) {
	if o.Fields == nil {
		o.Fields = make(map[string]Value)
	}
	o.Fields[name] = v
}

// Arr is an array object.
type Arr struct {
	Elems []Value
	Taint bool
}

// Tainted implements Value.
func (a *Arr) Tainted() bool {
	if a.Taint {
		return true
	}
	for _, e := range a.Elems {
		if e != nil && e.Tainted() {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (a *Arr) String() string {
	parts := make([]string, 0, len(a.Elems))
	for _, e := range a.Elems {
		if e == nil {
			parts = append(parts, "null")
			continue
		}
		parts = append(parts, e.String())
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// ClassRef is a java.lang.Class value (the result of getClass/T.class).
type ClassRef struct {
	Name  string
	Taint bool
}

// Tainted implements Value.
func (c ClassRef) Tainted() bool { return c.Taint }

// String implements fmt.Stringer.
func (c ClassRef) String() string { return c.Name + ".class" }

// MethodRef is a reflective method handle (the result of
// Class.getMethod).
type MethodRef struct {
	Owner string
	Name  string
	Taint bool
}

// Tainted implements Value.
func (m MethodRef) Tainted() bool { return m.Taint }

// String implements fmt.Stringer.
func (m MethodRef) String() string { return "Method(" + m.Owner + "." + m.Name + ")" }

// truthy converts a value to a branch decision.
func truthy(v Value) bool {
	switch t := v.(type) {
	case Int:
		return t.V != 0
	case Null:
		return false
	case nil:
		return false
	default:
		return true
	}
}

// isNull reports whether the value is a null reference.
func isNull(v Value) bool {
	_, ok := v.(Null)
	return ok || v == nil
}
