package interp

import (
	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/sinks"
)

// invoke evaluates a method invocation: sink detection first, then
// reflection/deserialization intrinsics, then concrete dispatch.
func (ma *machine) invoke(body *jimple.Body, inv *jimple.InvokeExpr, env map[string]Value, depth int) (Value, error) {
	var recv Value = Null{}
	if inv.Base != nil {
		recv = env[inv.Base.Name]
		if recv == nil {
			recv = Null{}
		}
	}
	args := make([]Value, len(inv.Args))
	for i, a := range inv.Args {
		v, err := ma.eval(body, a, env, depth)
		if err != nil {
			return Null{}, err
		}
		args[i] = v
	}

	// --- sink detection (TC positions must be tainted) ---------------
	if sink, ok := ma.matchSink(inv, recv); ok && (ma.wantSink == "" || sink.Key() == ma.wantSink) {
		if ma.sinkSatisfied(sink, recv, args) {
			caller := java.MethodKey("")
			if body != nil {
				caller = body.Method.Key()
			}
			rendered := make([]string, 0, len(args)+1)
			rendered = append(rendered, stringify(recv))
			for _, a := range args {
				rendered = append(rendered, stringify(a))
			}
			ma.hit = &Hit{Sink: sink, Caller: caller, Args: rendered}
			return Null{}, errConfirmed
		}
		// A sink reached without attacker data is inert; do not execute
		// its (stub) body.
		return Null{}, nil
	}

	// --- intrinsics ----------------------------------------------------
	if v, handled, err := ma.intrinsic(inv, recv, args); handled {
		return v, err
	}

	// --- dispatch -------------------------------------------------------
	h := ma.prog.Hierarchy
	var target *java.Method
	switch inv.Kind {
	case jimple.InvokeStatic, jimple.InvokeSpecial:
		target = h.ResolveMethod(inv.Class, inv.SubSignature())
	case jimple.InvokeVirtual, jimple.InvokeInterface:
		if isNull(recv) {
			return Null{}, errNPE
		}
		if rc := runtimeClass(recv); rc != "" {
			target = h.ResolveMethod(rc, inv.SubSignature())
		}
		if target == nil {
			target = h.ResolveMethod(inv.Class, inv.SubSignature())
		}
	case jimple.InvokeDynamic:
		return ma.dynamicDispatch(recv, args, depth)
	}
	if target == nil {
		return Null{}, nil // phantom callee
	}
	var callRecv Value = recv
	if target.IsStatic() {
		callRecv = Null{}
	}
	return ma.call(target, callRecv, args, depth+1)
}

// matchSink checks the static invoke class and the receiver's runtime
// class against the sink registry.
func (ma *machine) matchSink(inv *jimple.InvokeExpr, recv Value) (sinks.Sink, bool) {
	h := ma.prog.Hierarchy
	if s, ok := ma.reg.Match(h, inv.Class, inv.Name); ok {
		return s, true
	}
	if rc := runtimeClass(recv); rc != "" {
		if s, ok := ma.reg.Match(h, rc, inv.Name); ok {
			return s, true
		}
	}
	return sinks.Sink{}, false
}

// sinkSatisfied checks the Trigger_Condition positions against taint.
func (ma *machine) sinkSatisfied(s sinks.Sink, recv Value, args []Value) bool {
	for _, pos := range s.TC {
		var v Value
		if pos == 0 {
			v = recv
		} else if pos-1 < len(args) {
			v = args[pos-1]
		} else {
			return false
		}
		if v == nil || !v.Tainted() {
			return false
		}
	}
	return true
}

// intrinsic handles the reflection and deserialization APIs that the
// modeled runtime stubs out.
func (ma *machine) intrinsic(inv *jimple.InvokeExpr, recv Value, args []Value) (Value, bool, error) {
	switch {
	case inv.Name == "getClass" && len(args) == 0 && inv.Base != nil:
		if isNull(recv) {
			return Null{}, true, errNPE
		}
		return ClassRef{Name: runtimeClass(recv), Taint: recv.Tainted()}, true, nil

	case inv.Class == "java.lang.Class" && inv.Name == "getMethod":
		cr, ok := recv.(ClassRef)
		if !ok {
			return Null{}, true, errNPE
		}
		name := ""
		taint := cr.Taint
		if len(args) > 0 {
			if s, ok := args[0].(Str); ok {
				name = s.V
				taint = taint || s.Taint
			}
		}
		return MethodRef{Owner: cr.Name, Name: name, Taint: taint}, true, nil

	case inv.Class == "java.lang.Runtime" && inv.Name == "getRuntime":
		return &Obj{Class: "java.lang.Runtime"}, true, nil

	case inv.Name == "readFields" && isStreamClass(inv.Class):
		handle := &Obj{Class: "java.io.GetField", Taint: true}
		handle.SetField("__target", ma.payload)
		return handle, true, nil

	case inv.Class == "java.io.GetField" && inv.Name == "get":
		obj, ok := recv.(*Obj)
		if !ok {
			return Null{}, true, errNPE
		}
		targetVal := obj.Field("__target")
		target, ok := targetVal.(*Obj)
		if !ok {
			return Null{}, true, nil
		}
		if len(args) > 0 {
			if s, ok := args[0].(Str); ok {
				return target.Field(s.V), true, nil
			}
		}
		return Null{}, true, nil

	case inv.Name == "readObject" && isStreamClass(inv.Class):
		// Nested deserialization yields attacker data by definition.
		return &Obj{Class: java.ObjectClass, Taint: true}, true, nil

	case inv.Name == "defaultReadObject" && isStreamClass(inv.Class):
		return Null{}, true, nil

	case inv.Name == "toString" && len(args) == 0 && runtimeClass(recv) == "java.lang.String":
		return recv, true, nil
	}
	return Null{}, false, nil
}

func isStreamClass(class string) bool {
	switch class {
	case "java.io.ObjectInputStream", "java.io.ObjectInput":
		return true
	default:
		return false
	}
}

// dynamicDispatch models the frontend's java.lang.reflect.Proxy.dispatch
// marker: invoke the single one-string-parameter public method of the
// runtime target — the behaviour a dynamic proxy's InvocationHandler
// typically implements in the planted proxy gadgets.
func (ma *machine) dynamicDispatch(recv Value, args []Value, depth int) (Value, error) {
	if len(args) == 0 {
		return Null{}, nil
	}
	target, ok := args[0].(*Obj)
	if !ok {
		return Null{}, nil
	}
	c := ma.prog.Hierarchy.Class(target.Class)
	if c == nil {
		return Null{}, nil
	}
	for _, m := range c.Methods {
		if m.IsStatic() || m.IsAbstract() || len(m.Params) != 1 {
			continue
		}
		if !m.Params[0].Equal(java.StringType) {
			continue
		}
		callArgs := []Value{Null{}}
		if len(args) > 1 {
			callArgs[0] = args[1]
		}
		return ma.call(m, target, callArgs, depth+1)
	}
	return Null{}, nil
}
