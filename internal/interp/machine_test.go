package interp

import (
	"errors"
	"strings"
	"testing"

	"tabby/internal/corpus"
	"tabby/internal/java"
	"tabby/internal/javasrc"
	"tabby/internal/jimple"
	"tabby/internal/sinks"
)

// compileInterp compiles rt + source and returns the program.
func compileInterp(t *testing.T, src string) *jimple.Program {
	t.Helper()
	prog, err := javasrc.CompileArchives([]javasrc.ArchiveSource{
		corpus.RT(),
		{Name: "t.jar", Files: []javasrc.File{{Name: "t.java", Source: src}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// runMethod executes class#name(Object...) with the given receiver.
func runMethod(t *testing.T, prog *jimple.Program, key java.MethodKey, recv Value, args ...Value) (Value, error) {
	t.Helper()
	m := prog.Hierarchy.MethodByKey(key)
	if m == nil {
		t.Fatalf("method %s not found", key)
	}
	ma := newMachine(prog, sinks.Default(), &Obj{Class: "t.Dummy", Taint: true})
	return ma.call(m, recv, args, 0)
}

func TestMachineArithmeticAndLoops(t *testing.T) {
	prog := compileInterp(t, `
package t;
public class Math {
    public static int sum(int n) {
        int acc = 0;
        while (n > 0) { acc = acc + n; n = n - 1; }
        return acc;
    }
    public static int pick(int n) {
        if (n < 0) { return 0 - 1; } else if (n == 0) { return 0; }
        return 1;
    }
}
`)
	v, err := runMethod(t, prog, "t.Math#sum(int)", Null{}, Int{V: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := v.(Int); !ok || got.V != 15 {
		t.Errorf("sum(5) = %v", v)
	}
	for _, tc := range []struct{ in, want int64 }{{-3, -1}, {0, 0}, {9, 1}} {
		v, err := runMethod(t, prog, "t.Math#pick(int)", Null{}, Int{V: tc.in})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := v.(Int); !ok || got.V != tc.want {
			t.Errorf("pick(%d) = %v, want %d", tc.in, v, tc.want)
		}
	}
}

func TestMachineFieldsArraysStatics(t *testing.T) {
	prog := compileInterp(t, `
package t;
public class Box {
    public Object v;
    public static Object cache;
    public Object roundTrip(Object x) {
        this.v = x;
        Object[] arr = new Object[2];
        arr[1] = this.v;
        Box.cache = arr[1];
        return Box.cache;
    }
}
`)
	recv := &Obj{Class: "t.Box"}
	in := Str{V: "payload", Taint: true}
	v, err := runMethod(t, prog, "t.Box#roundTrip(java.lang.Object)", recv, in)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := v.(Str)
	if !ok || out.V != "payload" || !out.Taint {
		t.Errorf("roundTrip = %v", v)
	}
	if got := recv.Field("v"); got != in {
		t.Errorf("field store lost: %v", got)
	}
}

func TestMachineStringConcatTaint(t *testing.T) {
	prog := compileInterp(t, `
package t;
public class Cat {
    public static String greet(String name) { return "hello " + name; }
}
`)
	v, err := runMethod(t, prog, "t.Cat#greet(java.lang.String)", Null{}, Str{V: "x", Taint: true})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := v.(Str)
	if !ok || s.V != "hello x" || !s.Taint {
		t.Errorf("greet = %v", v)
	}
	// Untainted input stays untainted.
	v, _ = runMethod(t, prog, "t.Cat#greet(java.lang.String)", Null{}, Str{V: "x"})
	if v.(Str).Taint {
		t.Error("concat invented taint")
	}
}

func TestMachineNPEAndThrow(t *testing.T) {
	prog := compileInterp(t, `
package t;
public class Bad {
    public Object o;
    public static int boom(t.Bad b) {
        return b.o.hashCode();
    }
    public static void always() {
        throw new RuntimeException("x");
    }
}
`)
	_, err := runMethod(t, prog, "t.Bad#boom(t.Bad)", Null{}, Null{})
	if !errors.Is(err, errNPE) {
		t.Errorf("boom(null) err = %v, want NPE", err)
	}
	_, err = runMethod(t, prog, "t.Bad#always()", Null{})
	if !errors.Is(err, errThrown) {
		t.Errorf("always() err = %v, want thrown", err)
	}
}

func TestMachineStepBudget(t *testing.T) {
	prog := compileInterp(t, `
package t;
public class Spin {
    public static void forever() {
        int i = 1;
        while (i > 0) { i = i + 1; }
    }
}
`)
	m := prog.Hierarchy.MethodByKey("t.Spin#forever()")
	ma := newMachine(prog, sinks.Default(), &Obj{Class: "t.Dummy"})
	ma.maxSteps = 1000
	_, err := ma.call(m, Null{}, nil, 0)
	if !errors.Is(err, errSteps) {
		t.Errorf("err = %v, want step exhaustion", err)
	}
}

func TestMachineInstanceOfAndDispatch(t *testing.T) {
	prog := compileInterp(t, `
package t;
public class Base { public String kind() { return "base"; } }
public class Derived extends Base { public String kind() { return "derived"; } }
public class Driver {
    public static String probe(t.Base b) {
        if (b instanceof t.Derived) {
            return "isa-" + b.kind();
        }
        return b.kind();
    }
}
`)
	v, err := runMethod(t, prog, "t.Driver#probe(t.Base)", Null{}, &Obj{Class: "t.Derived"})
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := v.(Str); !ok || s.V != "isa-derived" {
		t.Errorf("probe(Derived) = %v", v)
	}
	v, err = runMethod(t, prog, "t.Driver#probe(t.Base)", Null{}, &Obj{Class: "t.Base"})
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := v.(Str); !ok || s.V != "base" {
		t.Errorf("probe(Base) = %v", v)
	}
}

func TestMachineStaticChannel(t *testing.T) {
	// Cross-method static state must flow (the Clojure-style GI-only
	// chain is dynamically real).
	prog := compileInterp(t, `
package t;
public class Reg {
    static String slot;
    public static void store(String c) { Reg.slot = c; }
    public static String load() { return Reg.slot; }
    public static String channel(String c) {
        store(c);
        return load();
    }
}
`)
	v, err := runMethod(t, prog, "t.Reg#channel(java.lang.String)", Null{}, Str{V: "data", Taint: true})
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := v.(Str); !ok || !s.Taint || s.V != "data" {
		t.Errorf("channel = %v", v)
	}
}

func TestValueStringsAndHelpers(t *testing.T) {
	vals := []struct {
		v    Value
		want string
	}{
		{Null{}, "null"},
		{Int{V: 3}, "3"},
		{Str{V: "x"}, `"x"`},
		{Str{V: "x", Taint: true}, `"x"*`},
		{&Obj{Class: "a.B", Taint: true}, "a.B{}*"},
		{&Arr{Elems: []Value{Int{V: 1}, Null{}}}, "[1,null]"},
		{ClassRef{Name: "a.B"}, "a.B.class"},
		{MethodRef{Owner: "a.B", Name: "m"}, "Method(a.B.m)"},
	}
	for _, tc := range vals {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	if truthy(Null{}) || !truthy(Int{V: 2}) || !truthy(Str{V: ""}) {
		t.Error("truthy misbehaves")
	}
	arr := &Arr{Elems: []Value{Str{V: "x", Taint: true}}}
	if !arr.Tainted() {
		t.Error("array taint must propagate from elements")
	}
	if !strings.Contains((&Obj{Class: "c.D"}).String(), "c.D") {
		t.Error("obj string")
	}
}
