package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"time"

	"tabby/internal/backend"
	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/cypher"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
	"tabby/internal/searchindex"
	"tabby/internal/store"
)

// SnapshotRow is one (operation, backend) measurement over a stored
// snapshot file. "open" measures what it costs to make a registered
// file servable: the full parse plus index compile for the heap
// backend, the zero-copy validation pass for the mmap one. "chains"
// and "query" measure steady-state request serving against an already
// open backend of each kind.
type SnapshotRow struct {
	Op          string `json:"op"`      // "open", "chains", "query"
	Backend     string `json:"backend"` // "mem" or "mmap"
	Iters       int    `json:"iters"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// MappedBytes is the memory-mapped region each mmap open creates
	// (page cache, not heap); 0 for heap rows.
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
}

// SnapshotSummary holds the gate-facing comparisons.
type SnapshotSummary struct {
	// OpenSpeedup is heap-open ns / mmap-open ns: how much faster a
	// registered snapshot becomes servable through the mapped view.
	OpenSpeedup float64 `json:"open_speedup"`
	MemOpenNs   int64   `json:"mem_open_ns"`
	MmapOpenNs  int64   `json:"mmap_open_ns"`
	// MmapOpenAllocs must stay a small constant — O(labels + relationship
	// types), never O(graph) — for lazy directory registration to scale.
	MmapOpenAllocs    int64 `json:"mmap_open_allocs"`
	MmapOpenHeapBytes int64 `json:"mmap_open_heap_bytes"`
	MemOpenHeapBytes  int64 `json:"mem_open_heap_bytes"`
	MappedBytes       int64 `json:"mapped_bytes"`
	// ChainsRatio and QueryRatio are mmap ns / mem ns for steady-state
	// serving: near 1.0, since both backends run the identical engines
	// over structurally identical indexes.
	ChainsRatio float64 `json:"chains_ratio"`
	QueryRatio  float64 `json:"query_ratio"`
}

// SnapshotResult is the storage-backend comparison, serialized to
// BENCH_snapshot.json by cmd/tabby-bench.
type SnapshotResult struct {
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Graph         string `json:"graph"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	// MmapSupported reports whether this host could open the zero-copy
	// view at all; when false only the heap rows are meaningful and the
	// timing gate does not arm.
	MmapSupported bool `json:"mmap_supported"`
	// Deterministic reports that both backends returned identical chains
	// and query results (checked once before timing).
	Deterministic bool            `json:"deterministic"`
	Rows          []SnapshotRow   `json:"rows"`
	Summary       SnapshotSummary `json:"summary"`
}

// snapshotQuery is the steady-state serving query: selective, fully
// index-answerable, the /v1/query hot path.
const snapshotQuery = `MATCH (m:Method) WHERE m.IS_SINK = true AND m.SINK_TYPE = "EXEC" RETURN m.NAME`

// RunSnapshot benchmarks the two storage backends over one snapshot of
// the whole Table IX component corpus, written through the production
// save path — the multi-megabyte shape a snapshot server actually
// fronts, large enough that per-byte costs dominate the fixed syscall
// overhead of an open. runs is the measured iteration count per row
// (after one warm-up each).
func RunSnapshot(runs int) (*SnapshotResult, error) {
	if runs < 1 {
		runs = 10
	}
	comps := corpus.Components()
	archives := []javasrc.ArchiveSource{corpus.RT()}
	for _, c := range comps {
		archives = append(archives, c.Archives...)
	}
	engine := core.New(core.Options{Workers: 1})
	rep, err := engine.AnalyzeSources(archives)
	if err != nil {
		return nil, fmt.Errorf("snapshot bench: %w", err)
	}
	dir, err := os.MkdirTemp("", "tabby-bench-snap")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "component.tsnap")
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := engine.SaveSnapshot(f, rep, "corpus", "all-components"); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	res := &SnapshotResult{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Graph:         fmt.Sprintf("corpus/%d-components", len(comps)),
		SnapshotBytes: fi.Size(),
		Deterministic: true,
	}

	// Open latency: heap = the pre-backend boot path (full parse + index
	// compile); mmap = the lazy-registration path (validate + alias).
	memRow := SnapshotRow{Op: "open", Backend: "mem", Iters: runs}
	memRow.NsPerOp, memRow.AllocsPerOp, memRow.BytesPerOp, err = measureOpBest(measureReps, runs, func() error {
		snap, err := store.ReadFile(path)
		if err != nil {
			return err
		}
		searchindex.For(snap.DB)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("snapshot bench: heap open: %w", err)
	}
	res.Rows = append(res.Rows, memRow)

	probe, err := backend.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot bench: open: %w", err)
	}
	res.MmapSupported = probe.Kind() == backend.KindMmap
	if res.MmapSupported {
		// The mapped open is microseconds-scale, so it gets extra
		// iterations per repetition to keep scheduler blips out of the mean.
		mmapRow := SnapshotRow{Op: "open", Backend: "mmap", Iters: runs * 20, MappedBytes: probe.MappedBytes()}
		mmapRow.NsPerOp, mmapRow.AllocsPerOp, mmapRow.BytesPerOp, err = measureOpBest(measureReps, runs*20, func() error {
			be, err := backend.Open(path)
			if err != nil {
				return err
			}
			if be.Kind() != backend.KindMmap {
				return fmt.Errorf("opened as %q mid-benchmark", be.Kind())
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("snapshot bench: mmap open: %w", err)
		}
		res.Rows = append(res.Rows, mmapRow)
		res.Summary.OpenSpeedup = float64(memRow.NsPerOp) / float64(mmapRow.NsPerOp)
		res.Summary.MmapOpenNs = mmapRow.NsPerOp
		res.Summary.MmapOpenAllocs = mmapRow.AllocsPerOp
		res.Summary.MmapOpenHeapBytes = mmapRow.BytesPerOp
		res.Summary.MappedBytes = probe.MappedBytes()
	}
	res.Summary.MemOpenNs = memRow.NsPerOp
	res.Summary.MemOpenHeapBytes = memRow.BytesPerOp

	// Steady-state serving: one open backend of each kind, identical
	// request workloads. The heap backend goes through the same Backend
	// interface the server uses.
	snap, err := store.ReadFile(path)
	if err != nil {
		return nil, err
	}
	backends := []backend.Backend{backend.FromSnapshot(snap)}
	if res.MmapSupported {
		backends = append(backends, probe)
	}

	opts := pathfinder.Options{Workers: 1}
	var wantChains *pathfinder.Result
	var wantRows [][]any
	for _, be := range backends {
		ix := be.Index() // compiled/viewed once, as in the server

		chains, err := pathfinder.FindIndex(ix, opts)
		if err != nil {
			return nil, fmt.Errorf("snapshot bench: chains on %s: %w", be.Kind(), err)
		}
		rows, err := drainQuery(be, snapshotQuery)
		if err != nil {
			return nil, fmt.Errorf("snapshot bench: query on %s: %w", be.Kind(), err)
		}
		if wantChains == nil {
			wantChains, wantRows = chains, rows
		} else if !reflect.DeepEqual(chains, wantChains) || !reflect.DeepEqual(rows, wantRows) {
			res.Deterministic = false
		}

		chainsRow := SnapshotRow{Op: "chains", Backend: be.Kind(), Iters: runs}
		chainsRow.NsPerOp, chainsRow.AllocsPerOp, chainsRow.BytesPerOp, err = measureOpBest(measureReps, runs, func() error {
			_, err := pathfinder.FindIndex(ix, opts)
			return err
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, chainsRow)

		queryRow := SnapshotRow{Op: "query", Backend: be.Kind(), Iters: runs}
		queryRow.NsPerOp, queryRow.AllocsPerOp, queryRow.BytesPerOp, err = measureOpBest(measureReps, runs, func() error {
			_, err := drainQuery(be, snapshotQuery)
			return err
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, queryRow)
	}
	if res.MmapSupported {
		res.Summary.ChainsRatio = rowRatio(res.Rows, "chains")
		res.Summary.QueryRatio = rowRatio(res.Rows, "query")
	}
	return res, nil
}

// drainQuery runs one query through the server's cursor path against a
// backend and collects the rows.
func drainQuery(src cypher.Source, query string) ([][]any, error) {
	cur, err := cypher.RunAnyCursorSource(src, query)
	if err != nil {
		return nil, err
	}
	var rows [][]any
	for {
		row, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

// rowRatio returns mmap ns / mem ns for the named op.
func rowRatio(rows []SnapshotRow, op string) float64 {
	var mem, mmap int64
	for _, r := range rows {
		if r.Op != op {
			continue
		}
		switch r.Backend {
		case backend.KindMem:
			mem = r.NsPerOp
		case backend.KindMmap:
			mmap = r.NsPerOp
		}
	}
	if mem == 0 {
		return 0
	}
	return float64(mmap) / float64(mem)
}

// measureReps is how many repetitions measureOpBest takes the fastest
// of. The measured ops are micro- to millisecond-scale, so a single
// descheduling blip would otherwise dominate a mean.
const measureReps = 3

// measureOpBest repeats measureOp and keeps the fastest repetition —
// the one least disturbed by the host — reporting its counters.
func measureOpBest(reps, iters int, run func() error) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
	best := int64(-1)
	for r := 0; r < reps; r++ {
		ns, allocs, bytes, e := measureOp(iters, run)
		if e != nil {
			return 0, 0, 0, e
		}
		if best < 0 || ns < best {
			best = ns
			nsPerOp, allocsPerOp, bytesPerOp = ns, allocs, bytes
		}
	}
	return nsPerOp, allocsPerOp, bytesPerOp, nil
}

// measureOp times iters executions of run and reads the malloc counters
// around them (after a GC, so the deltas are the runs' own allocations).
func measureOp(iters int, run func() error) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
	if err = run(); err != nil { // warm-up
		return 0, 0, 0, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err = run(); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return elapsed.Nanoseconds() / n,
		int64(after.Mallocs-before.Mallocs) / n,
		int64(after.TotalAlloc-before.TotalAlloc) / n,
		nil
}

// Format renders the backend comparison table.
func (r *SnapshotResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Snapshot backends: heap parse vs zero-copy mmap (GOMAXPROCS=%d, %s, %d-byte snapshot, deterministic=%v)\n",
		r.GOMAXPROCS, r.Graph, r.SnapshotBytes, r.Deterministic)
	fmt.Fprintf(&sb, "%-8s %-8s %14s %12s %14s %14s\n",
		"Op", "Backend", "ns/op", "allocs/op", "heap bytes/op", "mapped bytes")
	sb.WriteString(strings.Repeat("-", 75) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-8s %-8s %14d %12d %14d %14d\n",
			row.Op, row.Backend, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp, row.MappedBytes)
	}
	if r.MmapSupported {
		fmt.Fprintf(&sb, "open: mmap is %.0fx faster (%d allocs/op, %d heap bytes/op vs %d)\n",
			r.Summary.OpenSpeedup, r.Summary.MmapOpenAllocs, r.Summary.MmapOpenHeapBytes, r.Summary.MemOpenHeapBytes)
		fmt.Fprintf(&sb, "serving: chains %.2fx, query %.2fx (mmap/mem ns; ~1.0 = no serving penalty)\n",
			r.Summary.ChainsRatio, r.Summary.QueryRatio)
	} else {
		sb.WriteString("mmap view unsupported on this host; heap rows only\n")
	}
	return sb.String()
}

// WriteJSON serializes the result (the BENCH_snapshot.json artifact).
func (r *SnapshotResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
