package bench

import (
	"fmt"
	"strings"
	"time"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/java"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
	"tabby/internal/sinks"
)

// SceneResult is one Table X row: Tabby's result on a development scene.
type SceneResult struct {
	Scene       corpus.Scene
	JarCount    int
	CodeBytes   int64
	ResultCount int
	Effective   int
	SearchTime  time.Duration
	BuildTime   time.Duration
	// Chains holds representative chains per effective endpoint, for the
	// Table XI listing.
	Chains []pathfinder.Chain
}

// FPR is the scene false-positive rate (Formula 5).
func (r SceneResult) FPR() float64 {
	return pct(r.ResultCount-r.Effective, r.ResultCount)
}

// EvaluateScene runs the Tabby pipeline over one development scene.
func EvaluateScene(scene corpus.Scene) (*SceneResult, error) {
	reg := sinks.Default()
	archives := append([]javasrc.ArchiveSource{corpus.RT()}, scene.Archives...)
	prog, err := javasrc.CompileArchives(archives)
	if err != nil {
		return nil, fmt.Errorf("scene %s: %w", scene.Name, err)
	}
	engine := core.New(core.Options{Sinks: reg})
	g, buildTime, err := engine.BuildCPG(prog)
	if err != nil {
		return nil, fmt.Errorf("scene %s: %w", scene.Name, err)
	}
	chains, _, searchTime, err := engine.FindChains(g)
	if err != nil {
		return nil, fmt.Errorf("scene %s: %w", scene.Name, err)
	}

	// Scope to the scene's packages and dedupe by endpoint.
	specByEndpoint := make(map[endpoint]corpus.ChainSpec, len(scene.Chains))
	for _, spec := range scene.Chains {
		specByEndpoint[endpoint{source: spec.Source, sink: spec.SinkClass + "." + spec.SinkMethod}] = spec
	}
	seen := make(map[endpoint]bool)
	res := &SceneResult{Scene: scene, BuildTime: buildTime, SearchTime: searchTime}
	for _, ar := range prog.Archives {
		// rt.jar is substrate for the framework scenes but part of the
		// subject for the JDK8 scene.
		if ar.Name != "rt.jar" || scene.Name == "JDK8" {
			res.CodeBytes += ar.CodeBytes
			res.JarCount++
		}
	}
	for _, c := range chains {
		if !mentionsAnyPrefix(c.Names, scene.PackagePrefixes) {
			continue
		}
		sinkKey := java.MethodKey(c.Names[len(c.Names)-1])
		s, ok := reg.Match(prog.Hierarchy, java.MethodKeyClass(sinkKey), java.MethodKeyName(sinkKey))
		if !ok {
			continue
		}
		e := endpoint{source: java.MethodKey(c.Names[0]), sink: s.Key()}
		if seen[e] {
			continue
		}
		seen[e] = true
		res.ResultCount++
		if spec, ok := specByEndpoint[e]; ok && spec.Effective() {
			res.Effective++
			res.Chains = append(res.Chains, c)
		}
	}
	return res, nil
}

func mentionsAnyPrefix(names []string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, n := range names {
		for _, p := range prefixes {
			if strings.HasPrefix(n, p) {
				return true
			}
		}
	}
	return false
}

// Table10 is the reproduced development-scene experiment.
type Table10 struct {
	Rows []SceneResult
}

// RunTable10 evaluates every scene.
func RunTable10() (*Table10, error) {
	t := &Table10{}
	for _, scene := range corpus.Scenes() {
		res, err := EvaluateScene(scene)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, *res)
	}
	return t, nil
}

// Format renders measured columns next to the paper's.
func (t *Table10) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-8s %9s %12s %8s %11s %8s %13s | %-30s\n",
		"Scene", "Version", "Jar count", "Code size", "Results", "Effective", "FPR(%)", "Search time", "Paper (results/effective/FPR/search)")
	sb.WriteString(strings.Repeat("-", 150) + "\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-14s %-8s %9d %10.1fKB %8d %11d %8.1f %13s | %d/%d/%.1f%%/%.1fs\n",
			r.Scene.Name, r.Scene.Version, r.JarCount, float64(r.CodeBytes)/1024,
			r.ResultCount, r.Effective, r.FPR(), r.SearchTime.Round(time.Microsecond),
			r.Scene.PaperResultCount, r.Scene.PaperEffective, r.Scene.PaperFPRPercent, r.Scene.PaperSearchSeconds)
	}
	return sb.String()
}

// Table11 lists the Spring-scene gadget chains (paper Table XI).
func Table11() (string, error) {
	scene, err := corpus.SceneByName("Spring")
	if err != nil {
		return "", err
	}
	res, err := EvaluateScene(scene)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Gadget chains found in the Spring framework scene (cf. paper Table XI):\n\n")
	n := 0
	for _, c := range res.Chains {
		if c.SinkType != "JNDI" {
			continue
		}
		n++
		fmt.Fprintf(&sb, "#%d\n%s\n\n", n, c.String())
	}
	if n == 0 {
		return "", fmt.Errorf("table 11: no JNDI chains found in the Spring scene")
	}
	return sb.String(), nil
}
