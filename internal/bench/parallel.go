package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/sortutil"
)

// ParallelRow is the measurement for one worker count over the largest
// Table VIII synthetic corpus: full pipeline (CPG build + chain search),
// trimmed-mean wall clock, and the speedup against the 1-worker run.
type ParallelRow struct {
	Workers int             `json:"workers"`
	Time    time.Duration   `json:"time_ns"`
	Runs    []time.Duration `json:"runs_ns"`
	Speedup float64         `json:"speedup_vs_1"`
	Chains  int             `json:"chains"`
}

// ParallelResult is the worker-scaling experiment output, serialized to
// BENCH_parallel.json by cmd/tabby-bench.
type ParallelResult struct {
	Label      string  `json:"corpus"`
	Scale      float64 `json:"scale"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	// ExpectedChains is the number of gadget chains the synthetic corpus
	// plants (one per complete class group). Every row's Chains must be at
	// least this; RunParallel fails instead of recording a silent zero.
	ExpectedChains int           `json:"expected_chains"`
	Rows           []ParallelRow `json:"rows"`
	// Deterministic is true when every worker count produced identical
	// graph statistics and chain lists — the pipeline's contract.
	Deterministic bool `json:"deterministic"`
}

// RunParallel measures pipeline wall-clock at each worker count over the
// largest Table VIII synthetic corpus row, and cross-checks that the
// output (graph stats + chains) is identical at every count. The corpus
// plants one gadget chain per class group, so a run that detects fewer
// chains than planted — zero in particular — is an error, not a row:
// the bench must exercise taint→pathfinder end to end, not just compile.
func RunParallel(scale float64, runs int, workers []int) (*ParallelResult, error) {
	if runs < 1 {
		runs = 1
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	specs := corpus.SyntheticSpecs()
	spec := specs[len(specs)-1]
	prog, err := corpus.GenerateSynthetic(spec, scale)
	if err != nil {
		return nil, err
	}
	planted := corpus.SyntheticPlantedChains(spec, scale)

	res := &ParallelResult{
		Label:          spec.Label,
		Scale:          scale,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		ExpectedChains: planted,
		Deterministic:  true,
	}
	type signature struct {
		stats  string
		chains string
	}
	sigByWorkers := make(map[int]signature, len(workers))
	rowByWorkers := make(map[int]ParallelRow, len(workers))
	for _, w := range workers {
		if _, dup := rowByWorkers[w]; dup {
			continue
		}
		engine := core.New(core.Options{Workers: w})
		row := ParallelRow{Workers: w}
		var sig signature
		for i := 0; i < runs; i++ {
			start := time.Now()
			g, _, err := engine.BuildCPG(prog)
			if err != nil {
				return nil, fmt.Errorf("parallel bench workers=%d run %d: %w", w, i, err)
			}
			chains, _, _, err := engine.FindChains(g)
			if err != nil {
				return nil, fmt.Errorf("parallel bench workers=%d run %d: %w", w, i, err)
			}
			if len(chains) < planted {
				return nil, fmt.Errorf("parallel bench workers=%d run %d: found %d chains, corpus plants %d — the pipeline is not exercising taint→pathfinder",
					w, i, len(chains), planted)
			}
			row.Runs = append(row.Runs, time.Since(start))
			if i == 0 {
				row.Chains = len(chains)
				var sb strings.Builder
				for _, c := range chains {
					sb.WriteString(c.Key())
					sb.WriteByte('\n')
				}
				sig = signature{stats: fmt.Sprintf("%+v", g.Stats), chains: sb.String()}
			}
		}
		row.Time = trimmedMean(row.Runs)
		sigByWorkers[w] = sig
		rowByWorkers[w] = row
	}

	counts := sortutil.SortedKeys(rowByWorkers)
	base := sigByWorkers[counts[0]]
	var baseTime time.Duration
	if row, ok := rowByWorkers[1]; ok {
		baseTime = row.Time
	} else {
		baseTime = rowByWorkers[counts[0]].Time
	}
	for _, w := range counts {
		row := rowByWorkers[w]
		if row.Time > 0 {
			row.Speedup = float64(baseTime) / float64(row.Time)
		}
		if sigByWorkers[w] != base {
			res.Deterministic = false
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the scaling table.
func (r *ParallelResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parallel pipeline scaling (corpus %s, scale %.2f, GOMAXPROCS=%d, planted chains %d)\n",
		r.Label, r.Scale, r.GOMAXPROCS, r.ExpectedChains)
	fmt.Fprintf(&sb, "%-8s %14s %10s %8s\n", "Workers", "Time", "Speedup", "Chains")
	sb.WriteString(strings.Repeat("-", 44) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-8d %14s %9.2fx %8d\n",
			row.Workers, row.Time.Round(time.Millisecond), row.Speedup, row.Chains)
	}
	if r.Deterministic {
		sb.WriteString("output identical at every worker count\n")
	} else {
		sb.WriteString("WARNING: output differed across worker counts\n")
	}
	return sb.String()
}

// WriteJSON serializes the result (the BENCH_parallel.json artifact).
func (r *ParallelResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
