package bench

import (
	"os"
	"testing"

	"tabby/internal/searchindex"
)

// TestSnapshotBenchSmoke checks the experiment's correctness side on
// every test run: the snapshot writes and opens on both backends, and
// both returned identical chains and query results. Timing assertions
// live in TestSnapshotGate.
func TestSnapshotBenchSmoke(t *testing.T) {
	r, err := RunSnapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deterministic {
		t.Fatal("backends diverged on a benchmark workload")
	}
	if r.SnapshotBytes == 0 {
		t.Fatal("empty snapshot file")
	}
	if searchindex.LayoutSupported() != r.MmapSupported {
		t.Fatalf("MmapSupported = %v, host support = %v", r.MmapSupported, searchindex.LayoutSupported())
	}
	wantRows := 3 // heap open/chains/query
	if r.MmapSupported {
		wantRows = 6
	}
	if len(r.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d: %+v", len(r.Rows), wantRows, r.Rows)
	}
}

// TestSnapshotGate is the timing gate behind `make bench-snap`: at
// GOMAXPROCS=1, opening a registered snapshot through the zero-copy
// view must be at least 100x faster than the full parse, and its
// per-open allocations must be a small constant — O(labels +
// relationship types), independent of graph size — so a server can
// front thousands of snapshot files. Wall-clock assertions are
// load-sensitive, so the gate only arms when TABBY_BENCH_GATE is set.
func TestSnapshotGate(t *testing.T) {
	if os.Getenv("TABBY_BENCH_GATE") == "" {
		t.Skip("set TABBY_BENCH_GATE=1 (make bench-snap) to run the timing gate")
	}
	if !searchindex.LayoutSupported() {
		t.Skip("host cannot view on-disk index layouts")
	}
	r, err := RunSnapshot(10)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Format())
	if !r.Deterministic {
		t.Fatal("backends diverged on a benchmark workload")
	}
	if r.Summary.OpenSpeedup < 100 {
		t.Errorf("mmap open speedup %.0fx, gate requires >= 100x (mem %dns, mmap %dns)",
			r.Summary.OpenSpeedup, r.Summary.MemOpenNs, r.Summary.MmapOpenNs)
	}
	// The open must alias, not copy: a fixed allocation budget that no
	// graph-sized structure could fit in.
	if r.Summary.MmapOpenAllocs > 1024 {
		t.Errorf("mmap open allocates %d objects/op, gate requires <= 1024", r.Summary.MmapOpenAllocs)
	}
	if r.Summary.MmapOpenHeapBytes > 1<<20 {
		t.Errorf("mmap open allocates %d heap bytes/op, gate requires <= 1MiB", r.Summary.MmapOpenHeapBytes)
	}
	// Serving off the view must not tax the request path: identical
	// engines over structurally identical indexes.
	if r.Summary.ChainsRatio > 1.5 {
		t.Errorf("chains serving is %.2fx slower on mmap, gate requires <= 1.5x", r.Summary.ChainsRatio)
	}
	if r.Summary.QueryRatio > 1.5 {
		t.Errorf("query serving is %.2fx slower on mmap, gate requires <= 1.5x", r.Summary.QueryRatio)
	}
}
