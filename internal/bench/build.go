package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"tabby/internal/corpus"
	"tabby/internal/cpg"
	"tabby/internal/javasrc"
	"tabby/internal/taint"
)

// Seed cold-build measurements, recorded at GOMAXPROCS=1 workers=1 over
// the full corpus (26 components + the Spring scene) immediately before
// the dense-id/slot-env fast path landed. The bench gate compares every
// fresh run against these: the fast path must stay ≥1.5x faster and
// allocate ≥3x less, or `make bench-build` fails.
const (
	BuildSeedNsPerOp     int64 = 545_952_000
	BuildSeedAllocsPerOp int64 = 5_028_411
)

// BuildRow is one cold pipeline stage measured over the full corpus:
// trimmed-mean wall clock per op (an op = every scenario once) and the
// minimum allocation count observed for the stage across runs.
type BuildRow struct {
	Stage       string          `json:"stage"` // compile, taint, cpg, total
	NsPerOp     int64           `json:"ns_per_op"`
	AllocsPerOp int64           `json:"allocs_per_op"`
	Runs        []time.Duration `json:"runs_ns"`
}

// BuildResult is the cold-build experiment output, serialized to
// BENCH_build.json by cmd/tabby-bench.
type BuildResult struct {
	Corpus     string     `json:"corpus"`
	Scenarios  int        `json:"scenarios"`
	Methods    int        `json:"methods"` // bodies analyzed per op, workload sanity check
	GOMAXPROCS int        `json:"gomaxprocs"`
	Workers    int        `json:"workers"`
	Rows       []BuildRow `json:"rows"`
	// Seed is the pre-fast-path measurement the gate ratios compare
	// against (see BuildSeedNsPerOp / BuildSeedAllocsPerOp).
	SeedNsPerOp     int64 `json:"seed_ns_per_op"`
	SeedAllocsPerOp int64 `json:"seed_allocs_per_op"`
	// SpeedupVsSeed is seed-ns / total-ns; AllocRatioVsSeed is
	// seed-allocs / total-allocs. The bench-build gate requires ≥1.5x
	// and ≥3x respectively.
	SpeedupVsSeed    float64 `json:"speedup_vs_seed"`
	AllocRatioVsSeed float64 `json:"alloc_ratio_vs_seed"`
}

// buildScenario is one corpus entry analyzed per op.
type buildScenario struct {
	name     string
	archives []javasrc.ArchiveSource
}

func buildScenarios() ([]buildScenario, error) {
	var scenarios []buildScenario
	for _, comp := range corpus.Components() {
		scenarios = append(scenarios, buildScenario{
			name:     "component/" + comp.Name,
			archives: append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...),
		})
	}
	spring, err := corpus.SceneByName("Spring")
	if err != nil {
		return nil, err
	}
	scenarios = append(scenarios, buildScenario{
		name:     "scene/" + spring.Name,
		archives: append([]javasrc.ArchiveSource{corpus.RT()}, spring.Archives...),
	})
	return scenarios, nil
}

// buildStages indexes the per-stage accumulators.
const (
	stageCompile = iota
	stageTaint
	stageCPG
	stageTotal
	numBuildStages
)

var buildStageNames = [numBuildStages]string{"compile", "taint", "cpg", "total"}

// RunBuild measures the cold pipeline's build stages (compile, taint,
// cpg assembly — no search) over the full component corpus plus the
// Spring scene at workers=1, runs times, reporting trimmed-mean ns/op
// and the minimum Mallocs delta per stage. The cold path is what every
// first-time analysis of an artifact version pays, so it is measured
// cacheless and sequential — the configuration the seed constants were
// recorded under.
func RunBuild(runs int) (*BuildResult, error) {
	if runs < 1 {
		runs = 1
	}
	scenarios, err := buildScenarios()
	if err != nil {
		return nil, err
	}

	res := &BuildResult{
		Corpus:          "components+Spring",
		Scenarios:       len(scenarios),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         1,
		SeedNsPerOp:     BuildSeedNsPerOp,
		SeedAllocsPerOp: BuildSeedAllocsPerOp,
	}

	var (
		runNs     [numBuildStages][]time.Duration
		minAllocs [numBuildStages]int64
	)
	for run := 0; run < runs; run++ {
		var ns [numBuildStages]time.Duration
		var allocs [numBuildStages]int64
		methods := 0
		for _, sc := range scenarios {
			var ms runtime.MemStats

			runtime.ReadMemStats(&ms)
			m0 := ms.Mallocs
			t0 := time.Now()
			prog, err := javasrc.CompileArchivesOpts(sc.archives, javasrc.CompileOptions{Workers: 1})
			if err != nil {
				return nil, fmt.Errorf("build bench %s: compile: %w", sc.name, err)
			}
			ns[stageCompile] += time.Since(t0)
			runtime.ReadMemStats(&ms)
			allocs[stageCompile] += int64(ms.Mallocs - m0)
			methods += len(prog.Bodies)

			m1 := ms.Mallocs
			t1 := time.Now()
			taintRes, err := taint.Analyze(prog, taint.Options{Workers: 1})
			if err != nil {
				return nil, fmt.Errorf("build bench %s: taint: %w", sc.name, err)
			}
			ns[stageTaint] += time.Since(t1)
			runtime.ReadMemStats(&ms)
			allocs[stageTaint] += int64(ms.Mallocs - m1)

			m2 := ms.Mallocs
			t2 := time.Now()
			if _, err := cpg.BuildWithResult(prog, taintRes, cpg.Options{Workers: 1}); err != nil {
				return nil, fmt.Errorf("build bench %s: cpg: %w", sc.name, err)
			}
			ns[stageCPG] += time.Since(t2)
			runtime.ReadMemStats(&ms)
			allocs[stageCPG] += int64(ms.Mallocs - m2)
		}
		ns[stageTotal] = ns[stageCompile] + ns[stageTaint] + ns[stageCPG]
		allocs[stageTotal] = allocs[stageCompile] + allocs[stageTaint] + allocs[stageCPG]
		res.Methods = methods
		for s := 0; s < numBuildStages; s++ {
			runNs[s] = append(runNs[s], ns[s])
			if run == 0 || allocs[s] < minAllocs[s] {
				minAllocs[s] = allocs[s]
			}
		}
	}

	for s := 0; s < numBuildStages; s++ {
		res.Rows = append(res.Rows, BuildRow{
			Stage:       buildStageNames[s],
			NsPerOp:     int64(trimmedMean(runNs[s])),
			AllocsPerOp: minAllocs[s],
			Runs:        runNs[s],
		})
	}
	total := res.Rows[stageTotal]
	if total.NsPerOp > 0 {
		res.SpeedupVsSeed = float64(res.SeedNsPerOp) / float64(total.NsPerOp)
	}
	if total.AllocsPerOp > 0 {
		res.AllocRatioVsSeed = float64(res.SeedAllocsPerOp) / float64(total.AllocsPerOp)
	}
	return res, nil
}

// Format renders the stage table.
func (r *BuildResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cold build stages (corpus %s, %d scenarios, %d bodies/op, GOMAXPROCS=%d, workers=%d)\n",
		r.Corpus, r.Scenarios, r.Methods, r.GOMAXPROCS, r.Workers)
	fmt.Fprintf(&sb, "%-10s %14s %16s\n", "Stage", "ns/op", "allocs/op")
	sb.WriteString(strings.Repeat("-", 44) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %14s %16d\n",
			row.Stage, time.Duration(row.NsPerOp).Round(time.Microsecond), row.AllocsPerOp)
	}
	fmt.Fprintf(&sb, "vs seed: %.2fx faster, %.2fx fewer allocs (seed %s, %d allocs)\n",
		r.SpeedupVsSeed, r.AllocRatioVsSeed,
		time.Duration(r.SeedNsPerOp).Round(time.Microsecond), r.SeedAllocsPerOp)
	return sb.String()
}

// WriteJSON serializes the result (the BENCH_build.json artifact).
func (r *BuildResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Row returns the named stage row (nil when absent) — the bench-build
// gate reads "total" through this.
func (r *BuildResult) Row(stage string) *BuildRow {
	for i := range r.Rows {
		if r.Rows[i].Stage == stage {
			return &r.Rows[i]
		}
	}
	return nil
}
