package bench

import (
	"strings"
	"testing"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/interp"
	"tabby/internal/java"
	"tabby/internal/javasrc"
	"tabby/internal/sinks"
)

// checkExpectations runs the three tools on a component and verifies
// every planted chain is found by exactly the designed tool subset.
func checkExpectations(t *testing.T, name string) *ComponentResult {
	t.Helper()
	comp, err := corpus.ComponentByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateComponent(comp, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range comp.Chains {
		if got := res.Tabby.FoundSpecs[spec.ID]; got != spec.ExpectTabby {
			t.Errorf("%s %s (%s): tabby found=%v want %v", name, spec.ID, spec.Pattern, got, spec.ExpectTabby)
		}
		if got := res.GI.FoundSpecs[spec.ID]; got != spec.ExpectGI {
			t.Errorf("%s %s (%s): gadgetinspector found=%v want %v", name, spec.ID, spec.Pattern, got, spec.ExpectGI)
		}
		if comp.SLTimeout {
			if !res.SL.Timeout {
				t.Errorf("%s: serianalyzer must time out", name)
			}
		} else if got := res.SL.FoundSpecs[spec.ID]; got != spec.ExpectSL {
			t.Errorf("%s %s (%s): serianalyzer found=%v want %v", name, spec.ID, spec.Pattern, got, spec.ExpectSL)
		}
	}
	return res
}

func TestAspectJWeaverExpectations(t *testing.T) {
	res := checkExpectations(t, "AspectJWeaver")
	// Paper row: TB 1 result / 0 fake / 1 known; GI 8 fake; SL 27 fake.
	if res.Tabby.ResultCount != 1 || res.Tabby.Known != 1 || res.Tabby.Fake != 0 {
		t.Errorf("tabby outcome = %+v", res.Tabby)
	}
	if res.GI.Fake != 8 || res.GI.Known != 0 {
		t.Errorf("gi outcome = %+v", res.GI)
	}
	if res.SL.Fake != 27 || res.SL.Known != 0 {
		t.Errorf("sl outcome = %+v", res.SL)
	}
}

func TestCommonsCollections321Expectations(t *testing.T) {
	res := checkExpectations(t, "commons-collections(3.2.1)")
	// Paper row: TB 17 results / 4 fake / 4 known / 9 unknown.
	if res.Tabby.Known != 4 || res.Tabby.Unknown != 9 || res.Tabby.Fake != 4 {
		t.Errorf("tabby outcome = %+v", res.Tabby)
	}
	if res.GI.Known != 0 || res.GI.Unknown != 1 {
		t.Errorf("gi outcome = %+v", res.GI)
	}
	if res.SL.Known != 0 {
		t.Errorf("sl outcome = %+v", res.SL)
	}
	// The hand-modelled InvokerTransformer chain must be among Tabby's.
	if !res.Tabby.FoundSpecs["CC-InvokerTransformer"] {
		t.Error("CC-InvokerTransformer chain not found by tabby")
	}
}

func TestFileUploadExpectations(t *testing.T) {
	res := checkExpectations(t, "FileUpload1")
	// Paper row: GI known 1, TB known 2, SL known 2.
	if res.Tabby.Known != 2 || res.GI.Known != 1 || res.SL.Known != 2 {
		t.Errorf("known: tb=%d gi=%d sl=%d", res.Tabby.Known, res.GI.Known, res.SL.Known)
	}
}

func TestClojureSLTimesOut(t *testing.T) {
	res := checkExpectations(t, "Clojure")
	if !res.SL.Timeout {
		t.Fatal("Clojure must time Serianalyzer out (paper's X entry)")
	}
	// GI finds its 2 static-channel unknowns; Tabby does not.
	if res.GI.Unknown != 2 || res.Tabby.Unknown != 0 {
		t.Errorf("unknowns: gi=%d tb=%d", res.GI.Unknown, res.Tabby.Unknown)
	}
	if res.Tabby.Known != 1 || res.Tabby.Fake != 1 {
		t.Errorf("tabby outcome = %+v", res.Tabby)
	}
}

func TestProxyComponentsFindNothingEffective(t *testing.T) {
	// JSON1 and Resin: every effective chain uses dynamic proxy; Tabby
	// reports nothing (paper TB result 0).
	for _, name := range []string{"JSON1", "Resin"} {
		comp, err := corpus.ComponentByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EvaluateComponent(comp, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tabby.ResultCount != 0 {
			t.Errorf("%s: tabby results = %d, want 0", name, res.Tabby.ResultCount)
		}
		if res.GI.Fake == 0 {
			t.Errorf("%s: gi must report its decoy fakes", name)
		}
	}
}

func TestOutcomeRates(t *testing.T) {
	o := ToolOutcome{ResultCount: 4, Fake: 1, Known: 2, Unknown: 1}
	if got := o.FPR(); got != 25 {
		t.Errorf("FPR = %v", got)
	}
	if got := o.FNRAgainst(4); got != 50 {
		t.Errorf("FNR = %v", got)
	}
	empty := ToolOutcome{}
	if empty.FPR() != 0 || empty.FNRAgainst(0) != 0 {
		t.Error("zero divisions must yield 0")
	}
}

func TestC3P0HandChain(t *testing.T) {
	res := checkExpectations(t, "C3P0")
	if !res.Tabby.FoundSpecs["C3P0-ReferenceIndirector"] {
		t.Error("C3P0 ReferenceIndirector chain not found by tabby")
	}
	if res.GI.FoundSpecs["C3P0-ReferenceIndirector"] || res.SL.FoundSpecs["C3P0-ReferenceIndirector"] {
		t.Error("baselines must miss the C3P0 hand chain")
	}
	// Paper row: TB 6 results = 2 fake + 1 known + 3 unknown.
	if res.Tabby.ResultCount != 6 || res.Tabby.Unknown != 3 {
		t.Errorf("tabby outcome = %+v", res.Tabby)
	}
	// SL finds exactly the one shallow unknown (paper SL unknown = 1).
	if res.SL.Unknown != 1 {
		t.Errorf("sl unknown = %d, want 1", res.SL.Unknown)
	}
}

func TestCommonsBeanutilsHandChain(t *testing.T) {
	res := checkExpectations(t, "CommonsBeanutils1")
	if !res.Tabby.FoundSpecs["CB1-BeanComparator"] {
		t.Error("BeanComparator chain (via PriorityQueue.readObject) not found by tabby")
	}
	if res.Tabby.Known != 1 || res.Tabby.Fake != 0 {
		t.Errorf("tabby outcome = %+v", res.Tabby)
	}
}

// TestConfirmationMatchesGroundTruth runs the §V-C confirmation engine
// over every chain Tabby reports on a set of components: chains the
// manifest marks effective must confirm; fakes must not.
func TestConfirmationMatchesGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("concrete execution over several components")
	}
	reg := sinks.Default()
	for _, name := range []string{
		"AspectJWeaver", "BeanShell1", "C3P0", "CommonsBeanutils1",
		"commons-collections(3.2.1)", "FileUpload1", "Hibernate", "Rome",
	} {
		comp, err := corpus.ComponentByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := javasrc.CompileArchives(append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...))
		if err != nil {
			t.Fatal(err)
		}
		engine := core.New(core.Options{Sinks: reg})
		rep, err := engine.AnalyzeProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		specByEndpoint := make(map[endpoint]corpus.ChainSpec, len(comp.Chains))
		for _, spec := range comp.Chains {
			specByEndpoint[endpoint{source: spec.Source, sink: spec.SinkClass + "." + spec.SinkMethod}] = spec
		}
		checked := 0
		for _, chain := range rep.Chains {
			if !strings.HasPrefix(chain.Names[0], comp.Package+".") &&
				!strings.HasPrefix(chain.Names[0], "java.util.PriorityQueue#") {
				continue
			}
			last := java.MethodKey(chain.Names[len(chain.Names)-1])
			s, ok := reg.Match(prog.Hierarchy, java.MethodKeyClass(last), java.MethodKeyName(last))
			if !ok {
				continue
			}
			spec, planted := specByEndpoint[endpoint{source: java.MethodKey(chain.Names[0]), sink: s.Key()}]
			if !planted {
				continue
			}
			res, err := interp.Confirm(prog, chain.Names, interp.Options{Registry: reg})
			if err != nil {
				t.Errorf("%s/%s: confirm error: %v", name, spec.ID, err)
				continue
			}
			checked++
			if res.Confirmed != spec.Effective() {
				t.Errorf("%s/%s (%s): confirmed=%v but ground truth effective=%v (failures %v)",
					name, spec.ID, spec.Pattern, res.Confirmed, spec.Effective(), res.FailureModes)
			}
		}
		if checked == 0 {
			t.Errorf("%s: no chains checked", name)
		}
	}
}

// TestSceneChainsConfirm validates the Table X/XI effective chains
// dynamically: the Spring JNDI family and the Dubbo getConnection chain
// must all fire their sinks under concrete execution.
func TestSceneChainsConfirm(t *testing.T) {
	if testing.Short() {
		t.Skip("concrete execution over scenes")
	}
	for _, sceneName := range []string{"Spring", "Apache Dubbo"} {
		scene, err := corpus.SceneByName(sceneName)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EvaluateScene(scene)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := javasrc.CompileArchives(append([]javasrc.ArchiveSource{corpus.RT()}, scene.Archives...))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Chains) == 0 {
			t.Fatalf("%s: no effective chains collected", sceneName)
		}
		for _, chain := range res.Chains {
			c, err := interp.Confirm(prog, chain.Names, interp.Options{})
			if err != nil {
				t.Errorf("%s: %s: %v", sceneName, chain.Names[0], err)
				continue
			}
			if !c.Confirmed {
				t.Errorf("%s: effective chain failed to confirm: %s (%v)",
					sceneName, chain.Names[0], c.FailureModes)
			}
		}
	}
}
