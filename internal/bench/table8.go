package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tabby/internal/core"
	"tabby/internal/corpus"
)

// Table8Row is one row of the reproduced CPG-generation-efficiency
// experiment (paper Table VIII).
type Table8Row struct {
	Spec        corpus.SyntheticSpec
	JarCount    int
	ClassNodes  int
	MethodNodes int
	Edges       int
	// Time is the trimmed mean over the runs (paper methodology: repeat,
	// drop min and max, average the rest).
	Time time.Duration
	Runs []time.Duration
}

// Table8 is the full experiment result.
type Table8 struct {
	Scale float64
	Rows  []Table8Row
}

// RunTable8 generates each synthetic corpus at the given scale and times
// CPG construction runs times per row (minimum 1).
func RunTable8(scale float64, runs int) (*Table8, error) {
	if runs < 1 {
		runs = 1
	}
	t := &Table8{Scale: scale}
	for _, spec := range corpus.SyntheticSpecs() {
		row, err := RunTable8Row(spec, scale, runs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, *row)
	}
	return t, nil
}

// RunTable8Row measures one row.
func RunTable8Row(spec corpus.SyntheticSpec, scale float64, runs int) (*Table8Row, error) {
	prog, err := corpus.GenerateSynthetic(spec, scale)
	if err != nil {
		return nil, err
	}
	row := &Table8Row{Spec: spec, JarCount: len(prog.Archives)}
	engine := core.New(core.Options{})
	for i := 0; i < runs; i++ {
		g, elapsed, err := engine.BuildCPG(prog)
		if err != nil {
			return nil, fmt.Errorf("table 8 %s run %d: %w", spec.Label, i, err)
		}
		row.Runs = append(row.Runs, elapsed)
		if i == 0 {
			row.ClassNodes = g.Stats.ClassNodes
			row.MethodNodes = g.Stats.MethodNodes
			row.Edges = g.Stats.TotalEdges()
		}
	}
	row.Time = trimmedMean(row.Runs)
	return row, nil
}

// trimmedMean drops the min and max (when there are more than two runs)
// and averages the rest — the paper's timing methodology.
func trimmedMean(runs []time.Duration) time.Duration {
	if len(runs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) > 2 {
		sorted = sorted[1 : len(sorted)-1]
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return sum / time.Duration(len(sorted))
}

// Format renders measured columns next to the paper's.
func (t *Table8) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CPG generation efficiency (scale %.2f; paper columns in parentheses)\n", t.Scale)
	fmt.Fprintf(&sb, "%-7s %10s %12s %13s %13s %14s | %s\n",
		"Code", "Jar count", "Class nodes", "Method nodes", "Rel. edges", "Time", "Paper classes/methods/edges/minutes")
	sb.WriteString(strings.Repeat("-", 130) + "\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-7s %10d %12d %13d %13d %14s | %d/%d/%d/%.1f\n",
			r.Spec.Label, r.JarCount, r.ClassNodes, r.MethodNodes, r.Edges,
			r.Time.Round(time.Millisecond),
			r.Spec.PaperClasses, r.Spec.PaperMethods, r.Spec.PaperEdges, r.Spec.PaperMinutes)
	}
	sb.WriteString("\nLinearity check (time per method node):\n")
	for _, r := range t.Rows {
		if r.MethodNodes > 0 {
			fmt.Fprintf(&sb, "  %-7s %8.2f µs/method\n", r.Spec.Label,
				float64(r.Time.Microseconds())/float64(r.MethodNodes))
		}
	}
	return sb.String()
}
