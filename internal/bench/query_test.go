package bench

import (
	"os"
	"testing"
)

// TestQueryBenchSmoke checks the experiment's correctness side on every
// test run: both workloads execute, every (graph, query) pair produced
// identical results from both engines, and the selective queries exist
// for the gate to check. Timing assertions live in TestQueryGate.
func TestQueryBenchSmoke(t *testing.T) {
	r, err := RunQuery(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deterministic {
		t.Fatal("plan runner diverged from the interpreter on a benchmark query")
	}
	if len(r.Rows) == 0 || len(r.Rows) != 2*len(r.Summaries) {
		t.Fatalf("rows/summaries mismatch: %d rows, %d summaries", len(r.Rows), len(r.Summaries))
	}
	if r.BestSelective() == nil {
		t.Fatal("no selective query in the battery")
	}
	for _, pair := range [][2]string{
		{"synthetic-layered", "sink-scan"},
		{"synthetic-layered", "call-into-sink"},
		{"component/commons-collections(3.2.1)", "sink-scan"},
	} {
		if r.Summary(pair[0], pair[1]) == nil {
			t.Errorf("missing summary %s/%s", pair[0], pair[1])
		}
	}
}

// TestQueryGate is the timing gate behind `make bench-query`: at
// GOMAXPROCS=1, the compiled plan must beat the interpreter by at least
// 10x on some selective MATCH..WHERE pattern, and its steady-state
// allocations must be a small constant plus a few per result row (row
// materialization), independent of graph size. Wall-clock assertions
// are load-sensitive, so the gate only arms when TABBY_BENCH_GATE is
// set.
func TestQueryGate(t *testing.T) {
	if os.Getenv("TABBY_BENCH_GATE") == "" {
		t.Skip("set TABBY_BENCH_GATE=1 (make bench-query) to run the timing gate")
	}
	r, err := RunQuery(100)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deterministic {
		t.Fatal("plan runner diverged from the interpreter on a benchmark query")
	}
	t.Log("\n" + r.Format())
	best := r.BestSelective()
	if best == nil {
		t.Fatal("no selective query in the battery")
	}
	if best.Speedup < 10 {
		t.Errorf("best selective speedup %.1fx (%s/%s), gate requires >= 10x",
			best.Speedup, best.Graph, best.Query)
	}
	// Steady-state allocations: a small plan constant plus the cost of
	// materializing each result row — nothing proportional to graph size.
	for _, s := range r.Summaries {
		if ceiling := int64(32 + 4*s.ResultRows); s.PlanAlloc > ceiling {
			t.Errorf("%s/%s: %d allocs/op steady-state for %d rows, gate requires <= %d",
				s.Graph, s.Query, s.PlanAlloc, s.ResultRows, ceiling)
		}
	}
}
