package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"tabby/internal/backend"
	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
	"tabby/internal/searchindex"
	"tabby/internal/server"
	"tabby/internal/store"
)

// ServeRow is one measured request population from the load generator:
// a fixed operation fired Requests times at Concurrency in-flight
// requests, with the per-request latency distribution summarized as
// percentiles. Ops come in cold/cached pairs — "cold" rows run against
// a server whose response cache is disabled, "cached" rows against one
// serving the same graph with the cache warm — so each pair isolates
// what the serve-path caches buy.
type ServeRow struct {
	Op          string  `json:"op"`                // analyze_build, analyze_repeat, query_cold, query_cached, chains_cold, chains_cached
	Backend     string  `json:"backend,omitempty"` // "mem" or "mmap"; empty for analyze rows
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
	MeanNs      int64   `json:"mean_ns"`
	QPS         float64 `json:"qps"`
}

// ServeSummary holds the gate-facing comparisons.
type ServeSummary struct {
	// AnalyzeSpeedup is build-latency p50 / repeat-upload p50: what the
	// fingerprint-keyed result cache saves a client re-uploading an
	// unchanged corpus. The repeat path runs no compile and takes no
	// queue slot, so this is orders of magnitude.
	AnalyzeSpeedup  float64 `json:"analyze_speedup"`
	AnalyzeBuildNs  int64   `json:"analyze_build_ns"`
	AnalyzeRepeatNs int64   `json:"analyze_repeat_ns"`
	// Builds is how many actual builds the server ran across every
	// analyze request the bench fired; the repeat population must not
	// have grown it.
	Builds int64 `json:"builds"`
	// QuerySpeedup / ChainsSpeedup are cold p50 / cached p50 per
	// endpoint (best backend), what the response cache saves.
	QuerySpeedup  float64 `json:"query_speedup"`
	ChainsSpeedup float64 `json:"chains_speedup"`
	// CachedIdentical reports that every cached response body was
	// byte-identical to the cold body for the same request on the same
	// backend — the cache's correctness obligation.
	CachedIdentical bool `json:"cached_identical"`
	// RespCacheHitRate is hits/(hits+misses) across the cached
	// populations, from the server's own counters.
	RespCacheHitRate float64 `json:"resp_cache_hit_rate"`
}

// ServeResult is the serve-path load benchmark, serialized to
// BENCH_serve.json by cmd/tabby-bench.
type ServeResult struct {
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Component     string       `json:"component"`
	MmapSupported bool         `json:"mmap_supported"`
	Rows          []ServeRow   `json:"rows"`
	Summary       ServeSummary `json:"summary"`
}

// serveQuery is the steady-state read workload, same shape as the
// snapshot bench's: selective and index-answerable.
const serveQuery = `MATCH (m:Method) WHERE m.IS_SINK = true AND m.SINK_TYPE = "EXEC" RETURN m.NAME`

// serveConcurrency is how many requests the load generator keeps in
// flight. Modest on purpose: the bench gates run at GOMAXPROCS=1, where
// deep pipelines only measure scheduler queueing.
const serveConcurrency = 4

// RunServe load-tests the HTTP serve path end to end: real requests
// over loopback TCP against the production handler. It measures the
// analyze path cold (a build) and on repeat upload (the
// fingerprint-keyed result cache), and the query/chains read path with
// the response cache disabled vs warm on both storage backends,
// verifying cached bodies stay byte-identical to cold ones. runs
// scales the request populations.
func RunServe(runs int) (*ServeResult, error) {
	if runs < 1 {
		runs = 3
	}
	// The whole Table IX component corpus: large enough that a build
	// dwarfs the per-request fixed costs (JSON decode, fingerprint
	// hashing) a repeat upload still pays — the shape where the result
	// cache matters.
	comps := corpus.Components()
	var archives []javasrc.ArchiveSource
	for _, c := range comps {
		archives = append(archives, c.Archives...)
	}
	res := &ServeResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Component:  fmt.Sprintf("corpus/%d-components", len(comps)),
		Summary:    ServeSummary{CachedIdentical: true},
	}

	// --- Analyze path: build vs repeat upload against one server. ---
	anSrv := server.New(server.Options{Workers: 1})
	defer anSrv.Close()
	anTS := httptest.NewServer(anSrv.Handler())
	defer anTS.Close()

	body, err := analyzeBody(archives, "serve-bench-0")
	if err != nil {
		return nil, err
	}
	// Build latencies: distinct graph names force distinct fingerprints,
	// so every request is a real build through the queue. The analysis
	// cache warms across them — this is the steady-state build cost a
	// loaded server pays, the honest baseline for the repeat path.
	builds := runs
	buildLats := make([]int64, 0, builds)
	start := time.Now()
	for i := 0; i < builds; i++ {
		b, err := analyzeBody(archives, fmt.Sprintf("serve-bench-%d", i))
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if err := postAnalyze(anTS.URL, b); err != nil {
			return nil, fmt.Errorf("serve bench: build %d: %w", i, err)
		}
		buildLats = append(buildLats, time.Since(t0).Nanoseconds())
	}
	res.Rows = append(res.Rows, latRow("analyze_build", "", 1, buildLats, time.Since(start)))

	// Repeat uploads of the first corpus: every one resolves from the
	// result cache without building. Fired concurrently — coalescing and
	// cache hits are exactly the contended path.
	repeatN := runs * 40
	repeatLats, elapsed, err := fire(repeatN, serveConcurrency, func() error {
		return postAnalyze(anTS.URL, body)
	})
	if err != nil {
		return nil, fmt.Errorf("serve bench: repeat upload: %w", err)
	}
	res.Rows = append(res.Rows, latRow("analyze_repeat", "", serveConcurrency, repeatLats, elapsed))
	res.Summary.AnalyzeBuildNs = percentile(buildLats, 50)
	res.Summary.AnalyzeRepeatNs = percentile(repeatLats, 50)
	if res.Summary.AnalyzeRepeatNs > 0 {
		res.Summary.AnalyzeSpeedup = float64(res.Summary.AnalyzeBuildNs) / float64(res.Summary.AnalyzeRepeatNs)
	}
	res.Summary.Builds = anSrv.Builds()

	// --- Read path: cold (cache off) vs cached, on both backends. ---
	dir, err := os.MkdirTemp("", "tabby-bench-serve")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g.tsnap")
	if err := writeServeSnapshot(archives, path); err != nil {
		return nil, err
	}
	res.MmapSupported = searchindex.LayoutSupported()

	backends := []string{backend.KindMem}
	if res.MmapSupported {
		backends = append(backends, backend.KindMmap)
	}
	readN := runs * 40
	for _, kind := range backends {
		coldSrv, coldTS, err := readServer(kind, path, -1) // cache disabled
		if err != nil {
			return nil, err
		}
		warmSrv, warmTS, err := readServer(kind, path, 0) // default cache
		if err != nil {
			return nil, err
		}

		for _, op := range []struct {
			name string
			req  map[string]any
		}{
			{"query", map[string]any{"graph": "g", "query": serveQuery}},
			{"chains", map[string]any{"graph": "g", "max_depth": 12, "workers": 1}},
		} {
			reqBody, err := json.Marshal(op.req)
			if err != nil {
				return nil, err
			}
			endpoint := "/v1/" + op.name

			coldBody, err := postOnce(coldTS.URL+endpoint, reqBody)
			if err != nil {
				return nil, fmt.Errorf("serve bench: cold %s on %s: %w", op.name, kind, err)
			}
			lats, elapsed, err := fire(readN, serveConcurrency, func() error {
				_, err := postOnce(coldTS.URL+endpoint, reqBody)
				return err
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, latRow(op.name+"_cold", kind, serveConcurrency, lats, elapsed))

			// Warm the cache with one request, then measure hits; the hit
			// body must equal the uncached body byte for byte.
			warmBody, err := postOnce(warmTS.URL+endpoint, reqBody)
			if err != nil {
				return nil, err
			}
			cachedBody, err := postOnce(warmTS.URL+endpoint, reqBody)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(coldBody, warmBody) || !bytes.Equal(coldBody, cachedBody) {
				res.Summary.CachedIdentical = false
			}
			lats, elapsed, err = fire(readN, serveConcurrency, func() error {
				_, err := postOnce(warmTS.URL+endpoint, reqBody)
				return err
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, latRow(op.name+"_cached", kind, serveConcurrency, lats, elapsed))
		}

		if kind == backend.KindMem {
			rate, err := respCacheHitRate(warmTS.URL)
			if err != nil {
				return nil, err
			}
			res.Summary.RespCacheHitRate = rate
		}
		coldTS.Close()
		coldSrv.Close()
		warmTS.Close()
		warmSrv.Close()
	}

	res.Summary.QuerySpeedup = serveSpeedup(res.Rows, "query")
	res.Summary.ChainsSpeedup = serveSpeedup(res.Rows, "chains")
	return res, nil
}

// analyzeBody marshals the corpus sources into a wait-mode
// /v1/analyze request under the given graph name.
func analyzeBody(archives []javasrc.ArchiveSource, name string) ([]byte, error) {
	type fileJSON struct {
		Name   string `json:"name"`
		Source string `json:"source"`
	}
	var files []fileJSON
	for _, ar := range archives {
		for _, f := range ar.Files {
			files = append(files, fileJSON{Name: f.Name, Source: f.Source})
		}
	}
	return json.Marshal(map[string]any{
		"name":    name,
		"files":   files,
		"wait":    true,
		"workers": 1,
	})
}

// postAnalyze fires one analyze request and verifies the job finished.
func postAnalyze(url string, body []byte) error {
	raw, err := postOnce(url+"/v1/analyze", body)
	if err != nil {
		return err
	}
	var j struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(raw, &j); err != nil {
		return err
	}
	if j.Status != "done" {
		return fmt.Errorf("job ended %q: %s", j.Status, j.Error)
	}
	return nil
}

// postOnce POSTs body and returns the response bytes, erroring on any
// non-200.
func postOnce(url string, body []byte) ([]byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s = %d: %s", url, resp.StatusCode, raw)
	}
	return raw, nil
}

// respCacheHitRate reads the server's own cache counters over the wire
// (GET /v1/stats), as a monitoring client would.
func respCacheHitRate(url string) (float64, error) {
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st struct {
		RespCache struct {
			Hits   map[string]int64 `json:"hits"`
			Misses map[string]int64 `json:"misses"`
		} `json:"resp_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	var hits, misses int64
	for _, v := range st.RespCache.Hits {
		hits += v
	}
	for _, v := range st.RespCache.Misses {
		misses += v
	}
	if hits+misses == 0 {
		return 0, nil
	}
	return float64(hits) / float64(hits+misses), nil
}

// writeServeSnapshot builds the corpus graph once and saves it through
// the production snapshot path.
func writeServeSnapshot(archives []javasrc.ArchiveSource, path string) error {
	engine := core.New(core.Options{Workers: 1})
	all := append([]javasrc.ArchiveSource{corpus.RT()}, archives...)
	rep, err := engine.AnalyzeSources(all)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := engine.SaveSnapshot(f, rep, "g", "serve-bench"); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readServer builds one server fronting the snapshot on the requested
// backend with the given response-cache budget.
func readServer(kind, path string, cacheBytes int64) (*server.Server, *httptest.Server, error) {
	s := server.New(server.Options{Workers: 1, RespCacheBytes: cacheBytes})
	switch kind {
	case backend.KindMem:
		snap, err := store.ReadFile(path)
		if err != nil {
			s.Close()
			return nil, nil, err
		}
		if _, err := s.Registry().Add("g", snap); err != nil {
			s.Close()
			return nil, nil, err
		}
	default:
		if _, err := s.LoadSnapshotFile(path); err != nil {
			s.Close()
			return nil, nil, err
		}
	}
	return s, httptest.NewServer(s.Handler()), nil
}

// fire runs n requests at the given concurrency, returning every
// request's latency and the total wall time.
func fire(n, concurrency int, req func() error) ([]int64, time.Duration, error) {
	lats := make([]int64, n)
	errs := make([]error, concurrency)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= n {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				t0 := time.Now()
				if err := req(); err != nil {
					errs[w] = err
					return
				}
				lats[i] = time.Since(t0).Nanoseconds()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return lats, elapsed, nil
}

// latRow summarizes one latency population.
func latRow(op, kind string, concurrency int, lats []int64, elapsed time.Duration) ServeRow {
	var sum int64
	for _, l := range lats {
		sum += l
	}
	row := ServeRow{
		Op:          op,
		Backend:     kind,
		Requests:    len(lats),
		Concurrency: concurrency,
		P50Ns:       percentile(lats, 50),
		P99Ns:       percentile(lats, 99),
	}
	if len(lats) > 0 {
		row.MeanNs = sum / int64(len(lats))
	}
	if elapsed > 0 {
		row.QPS = float64(len(lats)) / elapsed.Seconds()
	}
	return row
}

// percentile returns the p-th percentile (nearest-rank) of lats.
func percentile(lats []int64, p int) int64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]int64(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// serveSpeedup is cold p50 / cached p50 for the named endpoint, taking
// the mem backend's rows (both backends cache identically; one ratio
// suffices for the gate).
func serveSpeedup(rows []ServeRow, op string) float64 {
	var cold, cached int64
	for _, r := range rows {
		if r.Backend != backend.KindMem {
			continue
		}
		switch r.Op {
		case op + "_cold":
			cold = r.P50Ns
		case op + "_cached":
			cached = r.P50Ns
		}
	}
	if cached == 0 {
		return 0
	}
	return float64(cold) / float64(cached)
}

// Format renders the load-generator table.
func (r *ServeResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Serve path under load (GOMAXPROCS=%d, component %s, concurrency %d, mmap=%v)\n",
		r.GOMAXPROCS, r.Component, serveConcurrency, r.MmapSupported)
	fmt.Fprintf(&sb, "%-16s %-8s %9s %14s %14s %14s %10s\n",
		"Op", "Backend", "requests", "p50 ns", "p99 ns", "mean ns", "qps")
	sb.WriteString(strings.Repeat("-", 92) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-16s %-8s %9d %14d %14d %14d %10.0f\n",
			row.Op, row.Backend, row.Requests, row.P50Ns, row.P99Ns, row.MeanNs, row.QPS)
	}
	fmt.Fprintf(&sb, "analyze: repeat upload is %.0fx faster than a build (%d builds total; repeats built nothing)\n",
		r.Summary.AnalyzeSpeedup, r.Summary.Builds)
	fmt.Fprintf(&sb, "read path: cached query %.1fx, cached chains %.1fx vs cold; hit rate %.2f; byte-identical=%v\n",
		r.Summary.QuerySpeedup, r.Summary.ChainsSpeedup, r.Summary.RespCacheHitRate, r.Summary.CachedIdentical)
	return sb.String()
}

// WriteJSON serializes the result (the BENCH_serve.json artifact).
func (r *ServeResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
