package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
)

// IncrementalRow measures one incremental-analysis scenario over the
// Spring scene: trimmed-mean wall clock of the full pipeline
// (compile → controllability → graph → search) and the cache hit rates
// of the first run.
type IncrementalRow struct {
	Scenario string          `json:"scenario"`
	Time     time.Duration   `json:"time_ns"`
	Runs     []time.Duration `json:"runs_ns"`
	// SpeedupVsCold is cold-time / this-time.
	SpeedupVsCold float64 `json:"speedup_vs_cold"`
	// TaintHits / TaintComps is the summary-cache hit rate.
	TaintComps int `json:"taint_components"`
	TaintHits  int `json:"taint_component_hits"`
	// BodyHits / Files is the frontend lowering hit rate.
	Files    int `json:"files"`
	BodyHits int `json:"body_hits"`
	// GraphReuse is the graph stage's reuse mode on the first run.
	GraphReuse string `json:"graph_reuse"`
	Chains     int    `json:"chains"`
}

// IncrementalResult is the incremental-analysis experiment output,
// serialized to BENCH_incremental.json by cmd/tabby-bench. Scenarios:
//
//	cold     — empty cache, full analysis (the baseline)
//	warm     — unchanged sources against a fully warmed cache
//	changed  — one class edited against a warmed cache
type IncrementalResult struct {
	Corpus     string           `json:"corpus"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Rows       []IncrementalRow `json:"rows"`
	// Deterministic is true when every scenario produced output identical
	// to a fresh cacheless analysis of the same sources — the incremental
	// pipeline's contract.
	Deterministic bool `json:"deterministic"`
}

// incrSignature fingerprints a report for the equivalence cross-check.
func incrSignature(rep *core.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%+v\n", rep.Graph.Stats)
	for _, c := range rep.Chains {
		sb.WriteString(c.Key())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RunIncremental measures the three incremental scenarios over the
// Spring development scene, runs times each, and cross-checks every
// scenario's output against a cacheless analysis of the same sources.
func RunIncremental(runs int) (*IncrementalResult, error) {
	if runs < 1 {
		runs = 1
	}
	scene, err := corpus.SceneByName("Spring")
	if err != nil {
		return nil, err
	}
	archives := append([]javasrc.ArchiveSource{corpus.RT()}, scene.Archives...)
	mutated, ok := corpus.MutateOneClass(archives)
	if !ok {
		return nil, fmt.Errorf("incremental bench: no mutation point in scene %s", scene.Name)
	}

	engine := core.New(core.Options{})

	// Cacheless baselines for the equivalence check.
	baseRep, err := engine.AnalyzeSources(archives)
	if err != nil {
		return nil, fmt.Errorf("incremental bench baseline: %w", err)
	}
	baseSig := incrSignature(baseRep)
	baseMutRep, err := engine.AnalyzeSources(mutated)
	if err != nil {
		return nil, fmt.Errorf("incremental bench mutated baseline: %w", err)
	}
	baseMutSig := incrSignature(baseMutRep)

	res := &IncrementalResult{
		Corpus:        "scene/" + scene.Name,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Deterministic: true,
	}

	type scenario struct {
		name string
		// prepare returns the cache to analyze with; it runs outside the
		// timed region (re-warming is setup, not the work being measured).
		prepare func() (*core.AnalysisCache, error)
		// sources the timed run analyzes, and the baseline it must match.
		sources []javasrc.ArchiveSource
		wantSig string
	}
	warmCache := func() (*core.AnalysisCache, error) {
		c := core.NewAnalysisCache()
		if _, err := engine.AnalyzeIncremental(c, archives); err != nil {
			return nil, err
		}
		return c, nil
	}
	scenarios := []scenario{
		{
			name:    "cold",
			prepare: func() (*core.AnalysisCache, error) { return core.NewAnalysisCache(), nil },
			sources: archives,
			wantSig: baseSig,
		},
		{
			name:    "warm",
			prepare: warmCache,
			sources: archives,
			wantSig: baseSig,
		},
		{
			name:    "changed",
			prepare: warmCache,
			sources: mutated,
			wantSig: baseMutSig,
		},
	}

	var coldTime time.Duration
	for _, sc := range scenarios {
		row := IncrementalRow{Scenario: sc.name}
		for i := 0; i < runs; i++ {
			cache, err := sc.prepare()
			if err != nil {
				return nil, fmt.Errorf("incremental bench %s run %d: prepare: %w", sc.name, i, err)
			}
			start := time.Now()
			rep, err := engine.AnalyzeIncremental(cache, sc.sources)
			if err != nil {
				return nil, fmt.Errorf("incremental bench %s run %d: %w", sc.name, i, err)
			}
			row.Runs = append(row.Runs, time.Since(start))
			if i == 0 {
				row.Chains = len(rep.Chains)
				if cs := rep.Timings.Cache; cs != nil {
					row.TaintComps = cs.Taint.Components
					row.TaintHits = cs.Taint.ComponentHits
					row.Files = cs.Compile.Files
					row.BodyHits = cs.Compile.BodyHits
					row.GraphReuse = cs.GraphReuse
				}
				if incrSignature(rep) != sc.wantSig {
					res.Deterministic = false
				}
			}
		}
		row.Time = trimmedMean(row.Runs)
		if sc.name == "cold" {
			coldTime = row.Time
		}
		if row.Time > 0 && coldTime > 0 {
			row.SpeedupVsCold = float64(coldTime) / float64(row.Time)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the incremental table.
func (r *IncrementalResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Incremental analysis (corpus %s, GOMAXPROCS=%d)\n", r.Corpus, r.GOMAXPROCS)
	fmt.Fprintf(&sb, "%-10s %12s %9s %14s %12s %10s %7s\n",
		"Scenario", "Time", "Speedup", "Taint hits", "Body hits", "Graph", "Chains")
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %12s %8.2fx %9d/%-4d %7d/%-4d %10s %7d\n",
			row.Scenario, row.Time.Round(time.Microsecond), row.SpeedupVsCold,
			row.TaintHits, row.TaintComps, row.BodyHits, row.Files,
			row.GraphReuse, row.Chains)
	}
	if r.Deterministic {
		sb.WriteString("output identical to cacheless analysis in every scenario\n")
	} else {
		sb.WriteString("WARNING: output differed from the cacheless analysis\n")
	}
	return sb.String()
}

// WriteJSON serializes the result (the BENCH_incremental.json artifact).
func (r *IncrementalResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Row returns the named scenario row (nil when absent) — the speedup
// gate in the Makefile reads warm/changed through this.
func (r *IncrementalResult) Row(scenario string) *IncrementalRow {
	for i := range r.Rows {
		if r.Rows[i].Scenario == scenario {
			return &r.Rows[i]
		}
	}
	return nil
}
