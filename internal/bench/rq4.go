package bench

import (
	"fmt"
	"strings"
)

// RQ4 is the paper's result-description aggregate (§IV-E): across the
// Table IX and Table X experiments, 117 chains were detected, 80 of them
// effective, for an overall 31.6 % false-positive rate.
type RQ4 struct {
	TotalDetected    int
	TotalEffective   int
	Table9Detected   int
	Table9Effective  int
	Table10Detected  int
	Table10Effective int
}

// OverallFPR is (detected − effective)/detected.
func (r RQ4) OverallFPR() float64 {
	return pct(r.TotalDetected-r.TotalEffective, r.TotalDetected)
}

// RunRQ4 runs both experiments and aggregates Tabby's numbers.
func RunRQ4(opts EvalOptions) (*RQ4, error) {
	t9, err := RunTable9(opts)
	if err != nil {
		return nil, err
	}
	t10, err := RunTable10()
	if err != nil {
		return nil, err
	}
	r := &RQ4{}
	o := t9.Totals()
	r.Table9Detected = o.TBResult
	r.Table9Effective = o.TBKnown + o.TBUnknown
	for _, row := range t10.Rows {
		r.Table10Detected += row.ResultCount
		r.Table10Effective += row.Effective
	}
	r.TotalDetected = r.Table9Detected + r.Table10Detected
	r.TotalEffective = r.Table9Effective + r.Table10Effective
	return r, nil
}

// Format renders the aggregate next to the paper's numbers.
func (r *RQ4) Format() string {
	var sb strings.Builder
	sb.WriteString("RQ4 aggregate (paper §IV-E: 117 detected, 80 effective, 31.6% overall FPR)\n")
	fmt.Fprintf(&sb, "  Table IX : %d detected, %d effective\n", r.Table9Detected, r.Table9Effective)
	fmt.Fprintf(&sb, "  Table X  : %d detected, %d effective\n", r.Table10Detected, r.Table10Effective)
	fmt.Fprintf(&sb, "  Total    : %d detected, %d effective, overall FPR %.1f%%\n",
		r.TotalDetected, r.TotalEffective, r.OverallFPR())
	return sb.String()
}
