package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
	"time"

	"tabby/internal/cypher"
	"tabby/internal/graphdb"
	"tabby/internal/searchindex"
)

// QueryRow is one (graph, query, engine) measurement: repeated
// executions timed wall-clock with allocation counts read from
// runtime.MemStats. The "interp" engine is the tree-walking
// interpreter over the generic property store; "plan" is the compiled
// iterator plan over the CSR search index, compiled once and re-run
// (the steady-state server shape, where one parsed query serves many
// requests).
type QueryRow struct {
	Graph       string `json:"graph"`
	Query       string `json:"query"`
	Engine      string `json:"engine"` // "interp" or "plan"
	Iters       int    `json:"iters"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	ResultRows  int    `json:"result_rows"`
}

// QuerySummary compares the two engines on one (graph, query) pair.
type QuerySummary struct {
	Graph      string  `json:"graph"`
	Query      string  `json:"query"`
	Selective  bool    `json:"selective"` // a pushdown-friendly needle-in-haystack pattern
	Speedup    float64 `json:"speedup"`   // interp ns / plan ns
	PlanNs     int64   `json:"plan_ns_per_op"`
	PlanAlloc  int64   `json:"plan_allocs_per_op"`
	ResultRows int     `json:"result_rows"`
}

// QueryResult is the query-engine comparison, serialized to
// BENCH_query.json by cmd/tabby-bench.
type QueryResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// Deterministic reports that both engines returned identical results
	// for every benchmarked query (checked once per pair before timing).
	Deterministic bool           `json:"deterministic"`
	Rows          []QueryRow     `json:"rows"`
	Summaries     []QuerySummary `json:"summaries"`
}

// benchQuery is one query in a workload's battery.
type benchQuery struct {
	name      string
	text      string
	selective bool
}

// queryWorkload is one benchmark graph plus the queries to run over it.
type queryWorkload struct {
	name    string
	db      *graphdb.DB
	queries []benchQuery
}

// queryWorkloads builds the benchmark graphs: a layered synthetic graph
// big enough that full scans hurt (one sink, 16 layers of 50 methods),
// and one real Table IX component CPG.
func queryWorkloads() ([]queryWorkload, error) {
	synthetic := queryWorkload{
		name: "synthetic-layered",
		db:   buildLayeredGraph(16, 50),
		queries: []benchQuery{
			{name: "sink-scan", selective: true,
				text: `MATCH (m:Method) WHERE m.IS_SINK = true RETURN m.NAME, m.SINK_TYPE`},
			{name: "name-eq", selective: true,
				text: `MATCH (m:Method) WHERE m.NAME = "sink" RETURN m.NAME`},
			{name: "call-into-sink", selective: true,
				text: `MATCH (a:Method)-[:CALL]->(b:Method) WHERE b.IS_SINK = true RETURN a.NAME, b.NAME`},
			{name: "count-all",
				text: `MATCH (m:Method) RETURN COUNT(*)`},
			{name: "limited-expand",
				text: `MATCH (a:Method)-[:CALL]->(b:Method) RETURN a.NAME LIMIT 10`},
		},
	}
	comp, err := pathfinderComponent()
	if err != nil {
		return nil, err
	}
	component := queryWorkload{
		name: comp.name,
		db:   comp.db,
		queries: []benchQuery{
			{name: "sink-scan", selective: true,
				text: `MATCH (m:Method) WHERE m.IS_SINK = true AND m.SINK_TYPE = "EXEC" RETURN m.NAME`},
			{name: "name-contains", selective: true,
				text: `MATCH (m:Method) WHERE m.NAME CONTAINS "readObject" RETURN m.NAME`},
			{name: "call-into-sink", selective: true,
				text: `MATCH (a:Method)-[:CALL]->(b:Method) WHERE b.IS_SINK = true RETURN a.NAME, b.NAME`},
			{name: "count-all",
				text: `MATCH (m:Method) RETURN COUNT(*)`},
		},
	}
	return []queryWorkload{synthetic, component}, nil
}

// RunQuery benchmarks the compiled plan runner against the tree-walking
// interpreter. runs is the measured iteration count per row (after one
// warm-up per engine; the index compiles outside the timed region, as
// in the server where searchindex.For is version-cached).
func RunQuery(runs int) (*QueryResult, error) {
	if runs < 1 {
		runs = 50
	}
	workloads, err := queryWorkloads()
	if err != nil {
		return nil, err
	}
	res := &QueryResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Deterministic: true}
	for _, w := range workloads {
		searchindex.For(w.db) // compile the index outside the timed region
		for _, bq := range w.queries {
			q, err := cypher.Parse(bq.text)
			if err != nil {
				return nil, fmt.Errorf("query bench %s/%s: %w", w.name, bq.name, err)
			}
			plan, err := cypher.PlanQuery(w.db, q)
			if err != nil {
				return nil, fmt.Errorf("query bench %s/%s: %w", w.name, bq.name, err)
			}

			// Equivalence before timing: a fast wrong answer is worthless.
			want, err := cypher.ExecuteGeneric(w.db, q)
			if err != nil {
				return nil, fmt.Errorf("query bench %s/%s: %w", w.name, bq.name, err)
			}
			got, err := plan.Run()
			if err != nil {
				return nil, fmt.Errorf("query bench %s/%s: %w", w.name, bq.name, err)
			}
			if !reflect.DeepEqual(want, got) {
				res.Deterministic = false
			}

			sum := QuerySummary{Graph: w.name, Query: bq.name, Selective: bq.selective, ResultRows: len(want.Rows)}
			var interpNs int64
			for _, engine := range []string{"interp", "plan"} {
				run := func() (*cypher.Result, error) {
					if engine == "plan" {
						return plan.Run()
					}
					return cypher.ExecuteGeneric(w.db, q)
				}
				row := QueryRow{
					Graph:      w.name,
					Query:      bq.name,
					Engine:     engine,
					Iters:      runs,
					ResultRows: len(want.Rows),
				}
				row.NsPerOp, row.AllocsPerOp, row.BytesPerOp, err = measureQuery(runs, run)
				if err != nil {
					return nil, fmt.Errorf("query bench %s/%s/%s: %w", w.name, bq.name, engine, err)
				}
				if engine == "interp" {
					interpNs = row.NsPerOp
				} else {
					sum.PlanNs = row.NsPerOp
					sum.PlanAlloc = row.AllocsPerOp
				}
				res.Rows = append(res.Rows, row)
			}
			if sum.PlanNs > 0 {
				sum.Speedup = float64(interpNs) / float64(sum.PlanNs)
			}
			res.Summaries = append(res.Summaries, sum)
		}
	}
	return res, nil
}

// measureQuery times iters executions and reads the malloc counters
// around them (after a GC, so the deltas are the runs' own allocations).
func measureQuery(iters int, run func() (*cypher.Result, error)) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
	if _, err = run(); err != nil { // warm-up
		return 0, 0, 0, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err = run(); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return elapsed.Nanoseconds() / n,
		int64(after.Mallocs-before.Mallocs) / n,
		int64(after.TotalAlloc-before.TotalAlloc) / n,
		nil
}

// BestSelective returns the summary with the highest speedup among the
// selective (pushdown-friendly) queries — the number the bench gate
// checks against the 10x target.
func (r *QueryResult) BestSelective() *QuerySummary {
	var best *QuerySummary
	for i := range r.Summaries {
		s := &r.Summaries[i]
		if !s.Selective {
			continue
		}
		if best == nil || s.Speedup > best.Speedup {
			best = s
		}
	}
	return best
}

// Summary returns the (graph, query) comparison, or nil.
func (r *QueryResult) Summary(graph, query string) *QuerySummary {
	for i := range r.Summaries {
		if r.Summaries[i].Graph == graph && r.Summaries[i].Query == query {
			return &r.Summaries[i]
		}
	}
	return nil
}

// Format renders the engine comparison table.
func (r *QueryResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cypher-lite: interpreter vs compiled plan (GOMAXPROCS=%d, deterministic=%v)\n",
		r.GOMAXPROCS, r.Deterministic)
	fmt.Fprintf(&sb, "%-32s %-16s %-7s %12s %10s %12s %6s\n",
		"Graph", "Query", "Engine", "ns/op", "allocs/op", "bytes/op", "rows")
	sb.WriteString(strings.Repeat("-", 101) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-32s %-16s %-7s %12d %10d %12d %6d\n",
			row.Graph, row.Query, row.Engine, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp, row.ResultRows)
	}
	for _, s := range r.Summaries {
		tag := ""
		if s.Selective {
			tag = " (selective)"
		}
		fmt.Fprintf(&sb, "%-32s %-16s plan is %.1fx faster, %d allocs/op%s\n",
			s.Graph, s.Query, s.Speedup, s.PlanAlloc, tag)
	}
	return sb.String()
}

// WriteJSON serializes the result (the BENCH_query.json artifact).
func (r *QueryResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
