package bench

import (
	"fmt"
	"strings"

	"tabby/internal/corpus"
)

// Table9 is the reproduced comparison experiment (paper Table IX): one
// row per evaluation component, plus the totals row whose FPR/FNR are
// the headline numbers of RQ2.
type Table9 struct {
	Rows []ComponentResult
}

// RunTable9 evaluates every Table IX component with all three tools.
func RunTable9(opts EvalOptions) (*Table9, error) {
	t := &Table9{}
	for _, comp := range corpus.Components() {
		res, err := EvaluateComponent(comp, opts)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, *res)
	}
	return t, nil
}

// Totals aggregates the table the way the paper does: counts summed, the
// "average" FPR/FNR computed over the totals (Formulas 5 and 6).
type Totals struct {
	Dataset                              int
	GIResult, GIFake, GIKnown, GIUnknown int
	TBResult, TBFake, TBKnown, TBUnknown int
	SLResult, SLFake, SLKnown, SLUnknown int
}

// Totals computes the aggregate row.
func (t *Table9) Totals() Totals {
	var out Totals
	for _, r := range t.Rows {
		out.Dataset += r.Component.DatasetChains
		out.GIResult += r.GI.ResultCount
		out.GIFake += r.GI.Fake
		out.GIKnown += r.GI.Known
		out.GIUnknown += r.GI.Unknown
		out.TBResult += r.Tabby.ResultCount
		out.TBFake += r.Tabby.Fake
		out.TBKnown += r.Tabby.Known
		out.TBUnknown += r.Tabby.Unknown
		if !r.SL.Timeout {
			out.SLResult += r.SL.ResultCount
			out.SLFake += r.SL.Fake
			out.SLKnown += r.SL.Known
			out.SLUnknown += r.SL.Unknown
		}
	}
	return out
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// GIFPR etc. expose the aggregate rates.
func (o Totals) GIFPR() float64 { return pct(o.GIFake, o.GIResult) }

// TBFPR is Tabby's aggregate false-positive rate (paper: 32.9 %).
func (o Totals) TBFPR() float64 { return pct(o.TBFake, o.TBResult) }

// SLFPR is Serianalyzer's aggregate false-positive rate (paper: 98.6 %).
func (o Totals) SLFPR() float64 { return pct(o.SLFake, o.SLResult) }

// GIFNR is GadgetInspector's aggregate false-negative rate (paper: 86.8 %).
func (o Totals) GIFNR() float64 { return pct(o.Dataset-o.GIKnown, o.Dataset) }

// TBFNR is Tabby's aggregate false-negative rate (paper: 31.6 %).
func (o Totals) TBFNR() float64 { return pct(o.Dataset-o.TBKnown, o.Dataset) }

// SLFNR is Serianalyzer's aggregate false-negative rate (paper: 81.6 %).
func (o Totals) SLFNR() float64 { return pct(o.Dataset-o.SLKnown, o.Dataset) }

// Format renders the table in the paper's column layout.
func (t *Table9) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %5s | %5s %5s %5s | %5s %5s %5s | %5s %5s %5s | %5s %5s %5s | %7s %7s %7s | %7s %7s %7s\n",
		"Component", "Known",
		"R-GI", "R-TB", "R-SL",
		"F-GI", "F-TB", "F-SL",
		"K-GI", "K-TB", "K-SL",
		"U-GI", "U-TB", "U-SL",
		"FPR-GI", "FPR-TB", "FPR-SL",
		"FNR-GI", "FNR-TB", "FNR-SL")
	sb.WriteString(strings.Repeat("-", 190) + "\n")
	for _, r := range t.Rows {
		slCell := func(v int) string {
			if r.SL.Timeout {
				return "X"
			}
			return fmt.Sprintf("%d", v)
		}
		slRate := func(v float64) string {
			if r.SL.Timeout {
				return "X"
			}
			return fmt.Sprintf("%.1f", v)
		}
		fmt.Fprintf(&sb, "%-28s %5d | %5d %5d %5s | %5d %5d %5s | %5d %5d %5s | %5d %5d %5s | %7.1f %7.1f %7s | %7.1f %7.1f %7s\n",
			r.Component.Name, r.Component.DatasetChains,
			r.GI.ResultCount, r.Tabby.ResultCount, slCell(r.SL.ResultCount),
			r.GI.Fake, r.Tabby.Fake, slCell(r.SL.Fake),
			r.GI.Known, r.Tabby.Known, slCell(r.SL.Known),
			r.GI.Unknown, r.Tabby.Unknown, slCell(r.SL.Unknown),
			r.GI.FPR(), r.Tabby.FPR(), slRate(r.SL.FPR()),
			r.GI.FNRAgainst(r.Component.DatasetChains), r.Tabby.FNRAgainst(r.Component.DatasetChains), slRate(r.SL.FNRAgainst(r.Component.DatasetChains)))
	}
	o := t.Totals()
	sb.WriteString(strings.Repeat("-", 190) + "\n")
	fmt.Fprintf(&sb, "%-28s %5d | %5d %5d %5d | %5d %5d %5d | %5d %5d %5d | %5d %5d %5d | %7.1f %7.1f %7.1f | %7.1f %7.1f %7.1f\n",
		"Total", o.Dataset,
		o.GIResult, o.TBResult, o.SLResult,
		o.GIFake, o.TBFake, o.SLFake,
		o.GIKnown, o.TBKnown, o.SLKnown,
		o.GIUnknown, o.TBUnknown, o.SLUnknown,
		o.GIFPR(), o.TBFPR(), o.SLFPR(),
		o.GIFNR(), o.TBFNR(), o.SLFNR())
	return sb.String()
}
