package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/javasrc"
	"tabby/internal/pathfinder"
	"tabby/internal/searchindex"
)

// PathfinderRow is one (graph, engine) measurement: a sequential
// (Workers: 1) search timed wall-clock with allocation counts read from
// runtime.MemStats, so the index engine's zero-allocation claim is a
// reported number rather than an assertion.
type PathfinderRow struct {
	Graph       string `json:"graph"`
	Impl        string `json:"impl"` // "generic" or "index"
	Iters       int    `json:"iters"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Chains      int    `json:"chains"`
	Expansions  int    `json:"expansions"`
}

// PathfinderSummary compares the two engines on one graph.
type PathfinderSummary struct {
	Graph      string  `json:"graph"`
	Speedup    float64 `json:"speedup"`     // generic ns / index ns
	AllocRatio float64 `json:"alloc_ratio"` // generic allocs / index allocs
}

// PathfinderResult is the search-engine comparison, serialized to
// BENCH_pathfinder.json by cmd/tabby-bench.
type PathfinderResult struct {
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Rows       []PathfinderRow     `json:"rows"`
	Summaries  []PathfinderSummary `json:"summaries"`
}

// pathfinderWorkload is one benchmark graph plus the search options to
// run over it.
type pathfinderWorkload struct {
	name string
	db   *graphdb.DB
	opts pathfinder.Options
}

// RunPathfinder benchmarks the compiled-index engine (pathfinder.Find)
// against the generic property-store engine (pathfinder.FindGeneric) on
// two synthetic layered graphs — deep (re-convergent, where dead-state
// memoization pays) and wide (per-edge machinery, where CSR layout pays)
// — plus one real Table IX component. runs is the measured iteration
// count per row (after one warm-up that also compiles the index).
func RunPathfinder(runs int) (*PathfinderResult, error) {
	if runs < 1 {
		runs = 20
	}
	workloads := []pathfinderWorkload{
		{name: "synthetic-deep", db: buildLayeredGraph(11, 2), opts: pathfinder.Options{Workers: 1}},
		{name: "synthetic-wide", db: buildLayeredGraph(2, 64), opts: pathfinder.Options{Workers: 1}},
	}
	comp, err := pathfinderComponent()
	if err != nil {
		return nil, err
	}
	workloads = append(workloads, *comp)

	res := &PathfinderResult{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, w := range workloads {
		searchindex.For(w.db) // compile outside the timed region
		var sum PathfinderSummary
		sum.Graph = w.name
		var generic, index PathfinderRow
		for _, impl := range []string{"generic", "index"} {
			run := func() (*pathfinder.Result, error) {
				if impl == "index" {
					return pathfinder.Find(w.db, w.opts)
				}
				return pathfinder.FindGeneric(w.db, w.opts)
			}
			first, err := run() // warm-up, and the row's chain/expansion counts
			if err != nil {
				return nil, fmt.Errorf("pathfinder bench %s/%s: %w", w.name, impl, err)
			}
			row := PathfinderRow{
				Graph:      w.name,
				Impl:       impl,
				Iters:      runs,
				Chains:     len(first.Chains),
				Expansions: first.Expansions,
			}
			row.NsPerOp, row.AllocsPerOp, row.BytesPerOp, err = measureSearch(runs, run)
			if err != nil {
				return nil, fmt.Errorf("pathfinder bench %s/%s: %w", w.name, impl, err)
			}
			if impl == "generic" {
				generic = row
			} else {
				index = row
			}
			res.Rows = append(res.Rows, row)
		}
		if index.NsPerOp > 0 {
			sum.Speedup = float64(generic.NsPerOp) / float64(index.NsPerOp)
		}
		if index.AllocsPerOp > 0 {
			sum.AllocRatio = float64(generic.AllocsPerOp) / float64(index.AllocsPerOp)
		}
		res.Summaries = append(res.Summaries, sum)
	}
	return res, nil
}

// measureSearch times iters runs and reads the malloc counters around
// them (after a GC, so the deltas are the runs' own allocations).
func measureSearch(iters int, run func() (*pathfinder.Result, error)) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err = run(); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return elapsed.Nanoseconds() / n,
		int64(after.Mallocs-before.Mallocs) / n,
		int64(after.TotalAlloc-before.TotalAlloc) / n,
		nil
}

// buildLayeredGraph assembles a frozen layered call graph: one sink (TC
// [0]) and `layers` layers of `width` methods, each method calling every
// method in the layer below with a pass-through Polluted_Position. No
// layer holds a source, so the search explores the full graph and records
// nothing — a pure traversal workload. Deep-narrow shapes revisit nodes
// along many distinct paths (memoization territory); shallow-wide shapes
// stress raw per-edge cost.
func buildLayeredGraph(layers, width int) *graphdb.DB {
	db := graphdb.New()
	sink := db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{
		cpg.PropName:             "sink",
		cpg.PropIsSink:           true,
		cpg.PropSinkType:         "EXEC",
		cpg.PropTriggerCondition: []int{0},
	})
	prev := []graphdb.ID{sink}
	for l := 1; l <= layers; l++ {
		cur := make([]graphdb.ID, width)
		for k := range cur {
			cur[k] = db.CreateNode([]string{cpg.LabelMethod}, graphdb.Props{
				cpg.PropName: fmt.Sprintf("m_%d_%d", l, k),
			})
		}
		for _, caller := range cur {
			for _, callee := range prev {
				if _, err := db.CreateRel(cpg.RelCall, caller, callee, graphdb.Props{
					cpg.PropPollutedPosition: []int{0},
				}); err != nil {
					panic(err) // graph is program-constructed; IDs are valid
				}
			}
		}
		prev = cur
	}
	db.Freeze()
	return db
}

// pathfinderComponent builds one real Table IX component's CPG as the
// non-synthetic workload (commons-collections 3.2.1, the classic gadget
// corpus; the first component if the name ever changes).
func pathfinderComponent() (*pathfinderWorkload, error) {
	comps := corpus.Components()
	comp := comps[0]
	for _, c := range comps {
		if c.Name == "commons-collections(3.2.1)" {
			comp = c
			break
		}
	}
	archives := append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...)
	prog, err := javasrc.CompileArchivesOpts(archives, javasrc.CompileOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	engine := core.New(core.Options{Workers: 1})
	g, _, err := engine.BuildCPG(prog)
	if err != nil {
		return nil, err
	}
	return &pathfinderWorkload{
		name: "component/" + comp.Name,
		db:   g.DB,
		opts: pathfinder.Options{Workers: 1},
	}, nil
}

// Format renders the engine comparison table.
func (r *PathfinderResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Path search: generic store vs compiled index (Workers=1, GOMAXPROCS=%d)\n", r.GOMAXPROCS)
	fmt.Fprintf(&sb, "%-32s %-8s %12s %10s %12s %7s %11s\n",
		"Graph", "Engine", "ns/op", "allocs/op", "bytes/op", "chains", "expansions")
	sb.WriteString(strings.Repeat("-", 98) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-32s %-8s %12d %10d %12d %7d %11d\n",
			row.Graph, row.Impl, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp, row.Chains, row.Expansions)
	}
	for _, s := range r.Summaries {
		fmt.Fprintf(&sb, "%-32s index is %.1fx faster, %.0fx fewer allocations\n",
			s.Graph, s.Speedup, s.AllocRatio)
	}
	return sb.String()
}

// WriteJSON serializes the result (the BENCH_pathfinder.json artifact).
func (r *PathfinderResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
