package bench

import (
	"os"
	"testing"
)

// TestBuildBenchSmoke checks the experiment's correctness side on every
// test run: all four stage rows exist, the workload is non-trivial, and
// the allocation counters are populated. Ratio assertions live in
// TestBuildGate.
func TestBuildBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus cold build")
	}
	r, err := RunBuild(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"compile", "taint", "cpg", "total"} {
		row := r.Row(name)
		if row == nil {
			t.Fatalf("missing stage %q", name)
		}
		if row.NsPerOp <= 0 || row.AllocsPerOp <= 0 {
			t.Errorf("stage %q: ns/op=%d allocs/op=%d, want both positive", name, row.NsPerOp, row.AllocsPerOp)
		}
	}
	if r.Methods < 100 {
		t.Errorf("corpus op analyzed %d bodies, want a real workload", r.Methods)
	}
}

// TestBuildGate is the ratio gate behind `make bench-build`: at
// GOMAXPROCS=1 workers=1, a cold full-corpus build must be ≥1.5x faster
// and allocate ≥3x less than the recorded pre-fast-path seed. Wall-clock
// assertions are load-sensitive, so the gate only arms when
// TABBY_BENCH_GATE is set.
func TestBuildGate(t *testing.T) {
	if os.Getenv("TABBY_BENCH_GATE") == "" {
		t.Skip("set TABBY_BENCH_GATE=1 (make bench-build) to run the ratio gate")
	}
	r, err := RunBuild(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Format())
	if r.SpeedupVsSeed < 1.5 {
		t.Errorf("cold build speedup vs seed %.2fx, gate requires >= 1.5x", r.SpeedupVsSeed)
	}
	if r.AllocRatioVsSeed < 3 {
		t.Errorf("cold build alloc ratio vs seed %.2fx, gate requires >= 3x", r.AllocRatioVsSeed)
	}
}
