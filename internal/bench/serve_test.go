package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"tabby/internal/searchindex"
)

// TestServeBenchSmoke checks the experiment's correctness side on
// every test run: the load generator completes against the real HTTP
// handler, the repeat-upload population built nothing, and every
// cached body matched its cold twin. Timing assertions live in
// TestServeGate.
func TestServeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve bench builds a component corpus")
	}
	r, err := RunServe(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Summary.CachedIdentical {
		t.Fatal("a cached response body diverged from its cold twin")
	}
	if r.Summary.Builds != 1 {
		t.Fatalf("analyze populations ran %d builds, want exactly 1 (repeats must not build)", r.Summary.Builds)
	}
	if searchindex.LayoutSupported() != r.MmapSupported {
		t.Fatalf("MmapSupported = %v, host support = %v", r.MmapSupported, searchindex.LayoutSupported())
	}
	// analyze_build + analyze_repeat, then {query,chains} x {cold,cached}
	// per backend.
	wantRows := 2 + 4
	if r.MmapSupported {
		wantRows += 4
	}
	if len(r.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d: %+v", len(r.Rows), wantRows, r.Rows)
	}
	for _, row := range r.Rows {
		if row.Requests == 0 || row.P50Ns == 0 || row.P99Ns < row.P50Ns || row.QPS <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}

	// The artifact round-trips.
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ServeResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(r.Rows) {
		t.Errorf("JSON round-trip lost rows: %d != %d", len(back.Rows), len(r.Rows))
	}
	if r.Format() == "" {
		t.Error("empty Format")
	}
}

// TestServeGate is the timing gate behind `make bench-serve`: at
// GOMAXPROCS=1, a repeat upload of an unchanged corpus must resolve at
// least 10x faster than a build — the fingerprint-keyed result cache
// doing its job — and cached read responses must stay byte-identical
// to cold ones on every backend. Wall-clock assertions are
// load-sensitive, so the gate only arms when TABBY_BENCH_GATE is set.
func TestServeGate(t *testing.T) {
	if os.Getenv("TABBY_BENCH_GATE") == "" {
		t.Skip("set TABBY_BENCH_GATE=1 (make bench-serve) to run the timing gate")
	}
	r, err := RunServe(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Format())
	if !r.Summary.CachedIdentical {
		t.Fatal("a cached response body diverged from its cold twin")
	}
	if r.Summary.Builds != 3 {
		t.Errorf("builds = %d, want exactly the 3 distinct-name builds", r.Summary.Builds)
	}
	if r.Summary.AnalyzeSpeedup < 10 {
		t.Errorf("repeat-upload speedup %.1fx, gate requires >= 10x (build %dns, repeat %dns)",
			r.Summary.AnalyzeSpeedup, r.Summary.AnalyzeBuildNs, r.Summary.AnalyzeRepeatNs)
	}
	// The cached read path must not be slower than recomputing: it
	// serves stored bytes. (No lower bound beyond parity — tiny graphs
	// answer fast either way; byte identity is the correctness gate.)
	if r.Summary.QuerySpeedup < 1 {
		t.Errorf("cached query p50 is slower than cold: speedup %.2fx", r.Summary.QuerySpeedup)
	}
	if r.Summary.ChainsSpeedup < 1 {
		t.Errorf("cached chains p50 is slower than cold: speedup %.2fx", r.Summary.ChainsSpeedup)
	}
	if r.Summary.RespCacheHitRate < 0.5 {
		t.Errorf("response-cache hit rate %.2f, want >= 0.5 over the cached populations", r.Summary.RespCacheHitRate)
	}
}
