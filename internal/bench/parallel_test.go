package bench

import (
	"testing"

	"tabby/internal/corpus"
)

// TestRunParallelFindsPlantedChains pins the silent-zero fix: the
// synthetic corpus plants one gadget chain per class group, and
// RunParallel must report at least that many on every row instead of
// recording "chains": 0 — proof the bench exercises taint→pathfinder,
// not just compile.
func TestRunParallelFindsPlantedChains(t *testing.T) {
	const scale = 0.002
	specs := corpus.SyntheticSpecs()
	planted := corpus.SyntheticPlantedChains(specs[len(specs)-1], scale)
	if planted == 0 {
		t.Fatal("generator must always plant at least one chain")
	}
	res, err := RunParallel(scale, 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectedChains != planted {
		t.Errorf("ExpectedChains = %d, want %d", res.ExpectedChains, planted)
	}
	for _, row := range res.Rows {
		if row.Chains < planted {
			t.Errorf("workers=%d found %d chains, corpus plants %d", row.Workers, row.Chains, planted)
		}
	}
	if !res.Deterministic {
		t.Error("output differed across worker counts")
	}
}
