// Package bench is the experiment harness: it runs Tabby and the two
// baselines over the evaluation corpus and regenerates every table of the
// paper's evaluation section (Tables VIII–XI plus the RQ4 aggregate).
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tabby/internal/baseline"
	"tabby/internal/baseline/gadgetinspector"
	"tabby/internal/baseline/serianalyzer"
	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/java"
	"tabby/internal/javasrc"
	"tabby/internal/jimple"
	"tabby/internal/pathfinder"
	"tabby/internal/sinks"
)

// endpoint is the normalized identity of a reported chain: its source
// method and the registry identity of its sink. Tools report path
// variants; the evaluation (like the paper's manual verification) counts
// distinct endpoint pairs.
type endpoint struct {
	source java.MethodKey
	sink   string // sinks.Sink.Key() form: "class.method"
}

// ToolOutcome is one tool's scored result on one component.
type ToolOutcome struct {
	ResultCount int
	Fake        int
	Known       int
	Unknown     int
	Timeout     bool
	Elapsed     time.Duration
	// FoundSpecs records which planted chains (by spec ID) were matched.
	FoundSpecs map[string]bool
}

// FPR is Formula 5: fake / result (percent). NaN-free: zero results give
// zero (the paper prints 0 for empty result sets).
func (o ToolOutcome) FPR() float64 {
	if o.ResultCount == 0 {
		return 0
	}
	return 100 * float64(o.Fake) / float64(o.ResultCount)
}

// FNRAgainst is Formula 6: (dataset − known)/dataset (percent).
func (o ToolOutcome) FNRAgainst(dataset int) float64 {
	if dataset == 0 {
		return 0
	}
	return 100 * float64(dataset-o.Known) / float64(dataset)
}

// ComponentResult is the full Table IX row produced by the harness.
type ComponentResult struct {
	Component corpus.Component
	GI        ToolOutcome
	Tabby     ToolOutcome
	SL        ToolOutcome
}

// EvalOptions tunes the comparison run.
type EvalOptions struct {
	// SLMaxSteps bounds Serianalyzer (stand-in for the one-hour cutoff);
	// zero means 400,000 — enough for every terminating component, far
	// below the explosion cliques.
	SLMaxSteps int
	// Registry is the sink registry shared by all tools; nil = default.
	Registry *sinks.Registry
}

// EvaluateComponent compiles rt + the component and runs all three tools.
func EvaluateComponent(comp corpus.Component, opts EvalOptions) (*ComponentResult, error) {
	if opts.Registry == nil {
		opts.Registry = sinks.Default()
	}
	if opts.SLMaxSteps <= 0 {
		opts.SLMaxSteps = 400_000
	}
	archives := append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...)
	prog, err := javasrc.CompileArchives(archives)
	if err != nil {
		return nil, fmt.Errorf("component %s: %w", comp.Name, err)
	}
	res := &ComponentResult{Component: comp}

	// Tabby.
	start := time.Now()
	engine := core.New(core.Options{Sinks: opts.Registry})
	rep, err := engine.AnalyzeProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("component %s: tabby: %w", comp.Name, err)
	}
	res.Tabby = scoreEndpoints(tabbyEndpoints(prog, opts.Registry, rep.Chains, comp.Package), comp)
	res.Tabby.Elapsed = time.Since(start)

	// GadgetInspector.
	start = time.Now()
	giRes, err := gadgetinspector.Run(prog, gadgetinspector.Options{Sinks: opts.Registry})
	if err != nil {
		return nil, fmt.Errorf("component %s: gadgetinspector: %w", comp.Name, err)
	}
	res.GI = scoreEndpoints(baselineEndpoints(prog, opts.Registry, giRes.Chains, comp.Package), comp)
	res.GI.Timeout = giRes.Timeout
	res.GI.Elapsed = time.Since(start)

	// Serianalyzer.
	start = time.Now()
	slRes, err := serianalyzer.Run(prog, serianalyzer.Options{
		Sinks:         opts.Registry,
		MaxSteps:      opts.SLMaxSteps,
		PackageFilter: comp.Package,
	})
	if err != nil {
		return nil, fmt.Errorf("component %s: serianalyzer: %w", comp.Name, err)
	}
	if slRes.Timeout {
		res.SL = ToolOutcome{Timeout: true, FoundSpecs: map[string]bool{}}
	} else {
		res.SL = scoreEndpoints(baselineEndpoints(prog, opts.Registry, slRes.Chains, comp.Package), comp)
	}
	res.SL.Elapsed = time.Since(start)
	return res, nil
}

// tabbyEndpoints normalizes pathfinder chains to endpoint pairs,
// restricted to chains that mention the component package.
func tabbyEndpoints(prog *jimple.Program, reg *sinks.Registry, chains []pathfinder.Chain, pkg string) []endpoint {
	var out []endpoint
	for _, c := range chains {
		if len(c.Names) < 2 || !mentionsPackage(c.Names, pkg) {
			continue
		}
		sinkKey := java.MethodKey(c.Names[len(c.Names)-1])
		s, ok := reg.Match(prog.Hierarchy, java.MethodKeyClass(sinkKey), java.MethodKeyName(sinkKey))
		if !ok {
			continue
		}
		out = append(out, endpoint{source: java.MethodKey(c.Names[0]), sink: s.Key()})
	}
	return dedupeEndpoints(out)
}

// baselineEndpoints does the same for baseline chains.
func baselineEndpoints(prog *jimple.Program, reg *sinks.Registry, chains []baseline.Chain, pkg string) []endpoint {
	var out []endpoint
	for _, c := range chains {
		if len(c.Methods) < 2 {
			continue
		}
		names := make([]string, len(c.Methods))
		for i, m := range c.Methods {
			names[i] = string(m)
		}
		if !mentionsPackage(names, pkg) {
			continue
		}
		sinkKey := c.Sink()
		s, ok := reg.Match(prog.Hierarchy, java.MethodKeyClass(sinkKey), java.MethodKeyName(sinkKey))
		if !ok {
			continue
		}
		out = append(out, endpoint{source: c.Source(), sink: s.Key()})
	}
	return dedupeEndpoints(out)
}

func mentionsPackage(names []string, pkg string) bool {
	if pkg == "" {
		return true
	}
	prefix := pkg + "."
	for _, n := range names {
		if strings.HasPrefix(n, prefix) {
			return true
		}
	}
	return false
}

func dedupeEndpoints(eps []endpoint) []endpoint {
	seen := make(map[endpoint]bool, len(eps))
	var out []endpoint
	for _, e := range eps {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].source != out[j].source {
			return out[i].source < out[j].source
		}
		return out[i].sink < out[j].sink
	})
	return out
}

// scoreEndpoints classifies reported endpoints against the component's
// ground-truth manifest.
func scoreEndpoints(eps []endpoint, comp corpus.Component) ToolOutcome {
	specByEndpoint := make(map[endpoint]corpus.ChainSpec, len(comp.Chains))
	for _, spec := range comp.Chains {
		specByEndpoint[endpoint{source: spec.Source, sink: spec.SinkClass + "." + spec.SinkMethod}] = spec
	}
	out := ToolOutcome{ResultCount: len(eps), FoundSpecs: make(map[string]bool)}
	for _, e := range eps {
		spec, ok := specByEndpoint[e]
		if !ok {
			out.Fake++ // unplanted static path: not triggerable
			continue
		}
		out.FoundSpecs[spec.ID] = true
		switch spec.Category {
		case corpus.CatKnown:
			out.Known++
		case corpus.CatUnknown:
			out.Unknown++
		default:
			out.Fake++
		}
	}
	return out
}
