package bench

import (
	"os"
	"testing"
)

// TestIncrementalBenchSmoke checks the experiment's correctness side on
// every test run: all three scenarios execute, the warm run reuses every
// taint component, and every scenario's output matches the cacheless
// analysis. Timing assertions live in TestIncrementalGate.
func TestIncrementalBenchSmoke(t *testing.T) {
	r, err := RunIncremental(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deterministic {
		t.Fatal("incremental scenarios diverged from the cacheless analysis")
	}
	for _, name := range []string{"cold", "warm", "changed"} {
		if r.Row(name) == nil {
			t.Fatalf("missing scenario %q", name)
		}
	}
	warm := r.Row("warm")
	if warm.TaintComps == 0 || warm.TaintHits != warm.TaintComps {
		t.Errorf("warm run reused %d/%d taint components, want all", warm.TaintHits, warm.TaintComps)
	}
	if warm.GraphReuse != "unchanged" {
		t.Errorf("warm run graph reuse = %q, want unchanged", warm.GraphReuse)
	}
	changed := r.Row("changed")
	if changed.TaintHits == 0 {
		t.Error("changed run reused no taint components")
	}
	if changed.BodyHits == 0 {
		t.Error("changed run re-lowered every file")
	}
}

// TestIncrementalGate is the timing gate behind `make bench-incr`: at
// GOMAXPROCS=1, a warm rerun must be at least 3x faster than a cold run
// and a one-class-changed rerun at least 2x. Wall-clock assertions are
// load-sensitive, so the gate only arms when TABBY_BENCH_GATE is set.
func TestIncrementalGate(t *testing.T) {
	if os.Getenv("TABBY_BENCH_GATE") == "" {
		t.Skip("set TABBY_BENCH_GATE=1 (make bench-incr) to run the timing gate")
	}
	r, err := RunIncremental(5)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deterministic {
		t.Fatal("incremental scenarios diverged from the cacheless analysis")
	}
	t.Log("\n" + r.Format())
	if warm := r.Row("warm"); warm.SpeedupVsCold < 3 {
		t.Errorf("warm speedup %.2fx, gate requires >= 3x", warm.SpeedupVsCold)
	}
	if changed := r.Row("changed"); changed.SpeedupVsCold < 2 {
		t.Errorf("one-class-changed speedup %.2fx, gate requires >= 2x", changed.SpeedupVsCold)
	}
}
