package bench

import (
	"strings"
	"testing"

	"tabby/internal/corpus"
)

func TestTable9ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full 26-component comparison")
	}
	table, err := RunTable9(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 26 {
		t.Fatalf("rows = %d, want 26", len(table.Rows))
	}
	o := table.Totals()

	// Paper totals: dataset 38; TB 79/26/26/27; GI 129/120/5/4;
	// SL 593/585/7/1. Exact equality is not expected (the corpus is a
	// reconstruction); the shape targets below are the paper's claims.
	if o.Dataset != 38 {
		t.Errorf("dataset = %d, want 38", o.Dataset)
	}
	// Tabby's known/unknown counts are fixed by the manifests: exact.
	if o.TBKnown != 26 || o.TBUnknown != 27 || o.TBFake != 26 {
		t.Errorf("tabby totals = %d/%d/%d, want 26/27/26 (known/unknown/fake)", o.TBKnown, o.TBUnknown, o.TBFake)
	}
	// Ordering claims (RQ2): Tabby FPR ≪ GI FPR < SL FPR; same for FNR.
	if !(o.TBFPR() < o.GIFPR() && o.GIFPR() < o.SLFPR()) {
		t.Errorf("FPR ordering violated: TB %.1f GI %.1f SL %.1f", o.TBFPR(), o.GIFPR(), o.SLFPR())
	}
	if !(o.TBFNR() < o.SLFNR() && o.TBFNR() < o.GIFNR()) {
		t.Errorf("FNR ordering violated: TB %.1f GI %.1f SL %.1f", o.TBFNR(), o.GIFNR(), o.SLFNR())
	}
	// Magnitude targets within a tolerance band.
	approx := func(name string, got, want, tol float64) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %.1f, paper %.1f (tolerance ±%.1f)", name, got, want, tol)
		}
	}
	approx("Tabby FPR", o.TBFPR(), 32.9, 5)
	approx("Tabby FNR", o.TBFNR(), 31.6, 5)
	approx("GI FPR", o.GIFPR(), 93.0, 7)
	approx("GI FNR", o.GIFNR(), 86.8, 7)
	approx("SL FPR", o.SLFPR(), 98.6, 3)
	approx("SL FNR", o.SLFNR(), 81.6, 7)
	// Tabby dominates on unknown chains.
	if o.TBUnknown < o.GIUnknown || o.TBUnknown < o.SLUnknown {
		t.Errorf("tabby unknowns (%d) must dominate GI (%d) and SL (%d)", o.TBUnknown, o.GIUnknown, o.SLUnknown)
	}
	// Two X rows.
	timeouts := 0
	for _, r := range table.Rows {
		if r.SL.Timeout {
			timeouts++
		}
	}
	if timeouts != 2 {
		t.Errorf("SL timeouts = %d, want 2 (Clojure, Jython1)", timeouts)
	}
	if !strings.Contains(table.Format(), "Total") {
		t.Error("Format must include the totals row")
	}
}

func TestTable10ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full scene evaluation")
	}
	table, err := RunTable10()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(table.Rows))
	}
	for _, r := range table.Rows {
		if r.ResultCount != r.Scene.PaperResultCount {
			t.Errorf("%s: results = %d, paper %d", r.Scene.Name, r.ResultCount, r.Scene.PaperResultCount)
		}
		if r.Effective != r.Scene.PaperEffective {
			t.Errorf("%s: effective = %d, paper %d", r.Scene.Name, r.Effective, r.Scene.PaperEffective)
		}
		if r.JarCount != r.Scene.PaperJarCount {
			t.Errorf("%s: jar count = %d, paper %d", r.Scene.Name, r.JarCount, r.Scene.PaperJarCount)
		}
		got, want := r.FPR(), r.Scene.PaperFPRPercent
		if got < want-1 || got > want+1 {
			t.Errorf("%s: FPR = %.1f, paper %.1f", r.Scene.Name, got, want)
		}
	}
	if !strings.Contains(table.Format(), "JDK8") {
		t.Error("Format must mention the JDK8 scene")
	}
}

func TestTable11SpringChains(t *testing.T) {
	out, err := Table11()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"LazyInitTargetSource",
		"SimpleJndiBeanFactory#getBean",
		"JndiLocatorSupport#lookup",
		"javax.naming.Context#lookup",
		"PrototypeTargetSource",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table XI output missing %q:\n%s", want, out)
		}
	}
}

func TestTable8SmallScale(t *testing.T) {
	table, err := RunTable8(0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(table.Rows))
	}
	for i, r := range table.Rows {
		if r.ClassNodes == 0 || r.MethodNodes == 0 || r.Edges == 0 {
			t.Errorf("row %s: empty graph", r.Spec.Label)
		}
		if i > 0 {
			prev := table.Rows[i-1]
			if r.Spec.PaperClasses > prev.Spec.PaperClasses && r.ClassNodes <= prev.ClassNodes {
				t.Errorf("class counts not growing: %s %d vs %s %d", prev.Spec.Label, prev.ClassNodes, r.Spec.Label, r.ClassNodes)
			}
		}
	}
	if !strings.Contains(table.Format(), "150MB") {
		t.Error("Format must include every row")
	}
}

func TestAblationSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("three full corpus passes")
	}
	results, err := RunAblationSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("variants = %d", len(results))
	}
	full, noInter, noPrune := results[0], results[1], results[2]
	// §III-C claim 1: without interprocedural analysis the FPR rises —
	// the sanitizer decoys come back as findings.
	if noInter.Fake <= full.Fake {
		t.Errorf("no-interprocedural fake count %d must exceed full's %d", noInter.Fake, full.Fake)
	}
	if noInter.FPR() <= full.FPR() {
		t.Errorf("no-interprocedural FPR %.1f must exceed full %.1f", noInter.FPR(), full.FPR())
	}
	// Recall must not drop when over-approximating harder.
	if noInter.Known < full.Known || noPrune.Known < full.Known {
		t.Errorf("ablations must not lose known chains: full=%d noInter=%d noPrune=%d",
			full.Known, noInter.Known, noPrune.Known)
	}
	// §III-C claim 2: dropping pruning also reintroduces fakes (the MCG
	// contains the uncontrollable edges the PCG removed).
	if noPrune.Fake < full.Fake {
		t.Errorf("no-pruning fake count %d must be at least full's %d", noPrune.Fake, full.Fake)
	}
	t.Logf("\n%s", FormatAblation(results))
}

// TestTable9PerRowFidelity compares every measured cell against the
// published row. Tabby's cells must match exactly (the manifests pin
// them); the baselines get a ±1 tolerance per cell — their counts emerge
// from genuinely different algorithms, not from the manifests.
func TestTable9PerRowFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("full 26-component comparison")
	}
	table, err := RunTable9(EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	paper := corpus.PaperExpectations()
	if len(paper) != len(table.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(paper), len(table.Rows))
	}
	within := func(got, want, tol int) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d <= tol
	}
	for i, row := range table.Rows {
		p := paper[i]
		if row.Component.Name != p.Name {
			t.Fatalf("row %d order mismatch: %s vs %s", i, row.Component.Name, p.Name)
		}
		if row.Tabby.Fake != p.TBFake || row.Tabby.Known != p.TBKnown || row.Tabby.Unknown != p.TBUnknown {
			t.Errorf("%s: tabby %d/%d/%d, paper %d/%d/%d (fake/known/unknown)",
				p.Name, row.Tabby.Fake, row.Tabby.Known, row.Tabby.Unknown, p.TBFake, p.TBKnown, p.TBUnknown)
		}
		if !within(row.GI.Fake, p.GIFake, 1) || !within(row.GI.Known, p.GIKnown, 1) || !within(row.GI.Unknown, p.GIUnknown, 1) {
			t.Errorf("%s: gadgetinspector %d/%d/%d, paper %d/%d/%d",
				p.Name, row.GI.Fake, row.GI.Known, row.GI.Unknown, p.GIFake, p.GIKnown, p.GIUnknown)
		}
		if p.SLTimeout {
			if !row.SL.Timeout {
				t.Errorf("%s: serianalyzer must time out", p.Name)
			}
			continue
		}
		if row.SL.Timeout {
			t.Errorf("%s: serianalyzer timed out unexpectedly", p.Name)
			continue
		}
		if !within(row.SL.Fake, p.SLFake, 1) || !within(row.SL.Known, p.SLKnown, 1) || !within(row.SL.Unknown, p.SLUnknown, 1) {
			t.Errorf("%s: serianalyzer %d/%d/%d, paper %d/%d/%d",
				p.Name, row.SL.Fake, row.SL.Known, row.SL.Unknown, p.SLFake, p.SLKnown, p.SLUnknown)
		}
	}
}
