package bench

import (
	"fmt"
	"strings"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/javasrc"
	"tabby/internal/sinks"
	"tabby/internal/taint"
)

// AblationResult contrasts full Tabby against a variant with one design
// element removed, over the Table IX corpus. The paper motivates both
// elements in §III-C: interprocedural Action summaries (their absence is
// the stated cause of other tools' false positives) and all-∞ call
// pruning (their defence against path explosion).
type AblationResult struct {
	Name        string
	ResultCount int
	Fake        int
	Known       int
	Unknown     int
}

// FPR is the variant's aggregate false-positive rate.
func (r AblationResult) FPR() float64 { return pct(r.Fake, r.ResultCount) }

// RunAblation evaluates a Tabby variant across all components.
func RunAblation(name string, opts core.Options) (*AblationResult, error) {
	res := &AblationResult{Name: name}
	for _, comp := range corpus.Components() {
		archives := appendRT(comp)
		engine := core.New(opts)
		rep, err := engine.AnalyzeSources(archives)
		if err != nil {
			return nil, fmt.Errorf("ablation %s on %s: %w", name, comp.Name, err)
		}
		eps := tabbyEndpoints(rep.Graph.Program, defaultRegistry(opts), rep.Chains, comp.Package)
		outcome := scoreEndpoints(eps, comp)
		res.ResultCount += outcome.ResultCount
		res.Fake += outcome.Fake
		res.Known += outcome.Known
		res.Unknown += outcome.Unknown
	}
	return res, nil
}

// RunAblationSuite produces the three-variant comparison: full Tabby,
// no-interprocedural, and no-pruning (MCG instead of PCG).
func RunAblationSuite() ([]AblationResult, error) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{name: "full"},
		{name: "no-interprocedural", opts: core.Options{
			TaintOptions: taint.Options{DisableInterprocedural: true},
		}},
		{name: "no-pruning (MCG)", opts: core.Options{KeepPrunedCalls: true}},
	}
	out := make([]AblationResult, 0, len(variants))
	for _, v := range variants {
		r, err := RunAblation(v.name, v.opts)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

// FormatAblation renders the suite.
func FormatAblation(results []AblationResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %8s %6s %6s %8s %8s\n", "Variant", "Results", "Fake", "Known", "Unknown", "FPR(%)")
	sb.WriteString(strings.Repeat("-", 64) + "\n")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-22s %8d %6d %6d %8d %8.1f\n",
			r.Name, r.ResultCount, r.Fake, r.Known, r.Unknown, r.FPR())
	}
	return sb.String()
}

func appendRT(comp corpus.Component) []javasrc.ArchiveSource {
	return append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...)
}

func defaultRegistry(opts core.Options) *sinks.Registry {
	if opts.Sinks != nil {
		return opts.Sinks
	}
	return sinks.Default()
}
