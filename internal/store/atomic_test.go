package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// listDir returns the directory's entry names, for asserting that no
// staging debris survives a write (successful or killed).
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestWriteFileAtomicKillMidWrite simulates a process dying at every
// byte boundary of a snapshot write: the destination must either hold
// the previous complete snapshot untouched or (for the initial write)
// not exist — never a torn file. The "kill" is an error injected after
// n bytes, which exercises exactly the code path a crash interrupts:
// the staged temp file holds a prefix and the rename never runs.
func TestWriteFileAtomicKillMidWrite(t *testing.T) {
	snap := buildSnapshot(t)
	encoded := encodeSnapshot(t, snap)
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.tabby")

	// Seed the destination with a complete good snapshot.
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := listDir(t, dir); len(got) != 1 {
		t.Fatalf("successful write left staging debris: %v", got)
	}

	killed := errors.New("killed mid-write")
	for n := 0; n <= len(encoded); n += 97 { // byte-level granularity is slow; stride covers every section
		err := atomicWriteFile(path, func(f *os.File) error {
			if _, err := f.Write(encoded[:n]); err != nil {
				return err
			}
			return killed
		})
		if !errors.Is(err, killed) {
			t.Fatalf("kill after %d bytes: err = %v, want the injected kill", n, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("kill after %d bytes: destination unreadable: %v", n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("kill after %d bytes tore the destination (%d bytes, want %d)", n, len(got), len(want))
		}
		if names := listDir(t, dir); len(names) != 1 {
			t.Fatalf("kill after %d bytes left staging debris: %v", n, names)
		}
	}

	// The destination still loads, byte-identically to the original.
	reloaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reloaded.Meta, snap.Meta) {
		t.Errorf("meta differs after killed overwrites")
	}

	// A crash between temp-file creation and cleanup leaves a .tmp- file;
	// it must be recognizable so directory scans never register it.
	stale := filepath.Join(dir, "graph.tabby"+TempSuffix+"12345")
	if err := os.WriteFile(stale, encoded[:len(encoded)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if !IsTempPath(stale) {
		t.Errorf("IsTempPath(%q) = false, want true", stale)
	}
	if IsTempPath(path) {
		t.Errorf("IsTempPath(%q) = true, want false", path)
	}
}

// TestWriteSummariesFileAtomic covers the TABBYSUM writer's staging
// path: a failed write must leave an existing cache file untouched.
func TestWriteSummariesFileAtomic(t *testing.T) {
	entries := buildSummaries()
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.tabbysum")
	if err := WriteSummariesFile(path, entries); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	killed := fmt.Errorf("killed mid-write")
	err = atomicWriteFile(path, func(f *os.File) error {
		if _, werr := f.Write(want[:len(want)/3]); werr != nil {
			return werr
		}
		return killed
	})
	if !errors.Is(err, killed) {
		t.Fatalf("err = %v, want the injected kill", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("killed write tore the summary cache")
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("staging debris left behind: %v", names)
	}
	if _, err := ReadSummariesFile(path); err != nil {
		t.Fatalf("cache unreadable after killed overwrite: %v", err)
	}
}
