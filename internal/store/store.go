// Package store is the persistent snapshot codec for built code property
// graphs: the "store once, query many times" substrate of the paper's
// workflow (§II-B, RQ4). A snapshot is one self-contained binary file
// holding the full graph (nodes, labels, relationships, properties,
// index specs), the sink/source registry state the graph was built with,
// and analysis metadata (graph statistics, pruned-call counters).
//
// On-disk layout:
//
//	8-byte magic "TABBYSNP" | uint16 LE format version
//	section*                 (fixed order: meta sink srcs strs node rels indx fini)
//
// where each section is framed as
//
//	4-byte tag | uint32 LE payload length | payload | uint32 LE CRC-32 (IEEE) of payload
//
// and "fini" is an empty terminal section, so truncation anywhere is
// detectable. Strings inside the node/rels/indx payloads are interned
// into the shared "strs" table; payload integers are varint-encoded.
// Loading verifies the magic, version, section order, and every
// checksum, and returns errors — never panics — on corrupt input. The
// loaded store is frozen (immutable), so Cypher-lite queries, path
// searches, and stats against it are byte-identical to the same
// operations on the freshly built graph, and it can be served to many
// goroutines concurrently.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/sinks"
	"tabby/internal/taint"
)

// FormatVersion is the current snapshot format. Version 2 added the
// "sumc" section carrying the persisted method-summary cache; version 3
// added the "csr3" section — the compiled search index laid out as
// aligned little-endian arrays an mmap-backed server views in place
// (package backend) while heap loaders simply CRC-check and skip it.
// Version 1 and 2 files (without the newer sections) still load.
// Readers reject anything newer with a clear error.
const FormatVersion = 3

const (
	magic          = "TABBYSNP"
	maxSectionSize = 1 << 30 // sanity cap so a corrupt length cannot force a huge allocation

	headerLen       = 10 // magic + uint16 version
	sectionOverhead = 12 // 4-byte tag + uint32 length + uint32 CRC
)

// The fixed section order per format version. A snapshot must contain
// exactly these sections, in this order.
var (
	sectionOrderV1 = []string{"meta", "sink", "srcs", "strs", "node", "rels", "indx", "fini"}
	sectionOrderV2 = []string{"meta", "sink", "srcs", "strs", "node", "rels", "indx", "sumc", "fini"}
	sectionOrderV3 = []string{"meta", "sink", "srcs", "strs", "node", "rels", "indx", "sumc", "csr3", "fini"}
)

func sectionOrderFor(version uint16) []string {
	switch {
	case version >= 3:
		return sectionOrderV3
	case version == 2:
		return sectionOrderV2
	default:
		return sectionOrderV1
	}
}

// Property value type tags.
const (
	tagBool   = 0x01
	tagInt    = 0x02
	tagFloat  = 0x03
	tagString = 0x04
	tagInts   = 0x05
)

// Meta is the analysis metadata carried alongside the graph.
type Meta struct {
	// Name is the snapshot's identity; servers register loaded graphs
	// under it.
	Name string
	// Corpus describes what was analyzed (component/scene/directory).
	Corpus string
	// Stats are the builder's node/edge counters, including the
	// pruned-call count of the PCG construction.
	Stats cpg.Stats
	// TotalCalls and PrunedCalls are the controllability analysis
	// counters (how many call edges existed and how many the analysis
	// proved uncontrollable).
	TotalCalls  int
	PrunedCalls int
}

// Snapshot is a fully persisted analysis: the graph, the registry state
// it was built with, and the metadata describing it.
type Snapshot struct {
	Meta    Meta
	DB      *graphdb.DB
	Sinks   *sinks.Registry
	Sources sinks.SourceConfig
	// Summaries is the exported method-summary cache of the analysis, so a
	// service loading the snapshot can warm-start incremental re-analysis.
	// Optional: empty on version-1 snapshots and on saves without a cache.
	Summaries []taint.ConeEntry
}

// --- writing -------------------------------------------------------------

// Write encodes the snapshot to w.
func Write(w io.Writer, snap *Snapshot) error {
	if snap == nil || snap.DB == nil {
		return fmt.Errorf("store: nil snapshot or graph")
	}
	ex := snap.DB.Export()
	tab := newStringTable()

	// Graph payloads are encoded first so the string table is complete
	// before its section is emitted; the file still carries the table
	// ahead of every section that references it.
	nodePay, err := encodeNodes(ex.Nodes, tab)
	if err != nil {
		return err
	}
	relsPay, err := encodeRels(ex.Rels, tab)
	if err != nil {
		return err
	}
	indxPay := encodeIndexes(ex.Indexes, tab)
	sumcPay := encodeSummaries(snap.Summaries, tab)

	sections := map[string][]byte{
		"meta": encodeMeta(snap.Meta),
		"sink": encodeSinks(snap.Sinks),
		"srcs": encodeSources(snap.Sources),
		"strs": tab.encode(),
		"node": nodePay,
		"rels": relsPay,
		"indx": indxPay,
		"sumc": sumcPay,
		"fini": nil,
	}

	// The csr3 payload embeds its own absolute file offset (its arrays
	// are 8-byte aligned *in file-offset terms* so a mapped reader can
	// alias them), so it is encoded last, once every preceding section's
	// length is final.
	off := int64(headerLen)
	for _, tag := range sectionOrderFor(FormatVersion) {
		if tag == "csr3" {
			break
		}
		off += sectionOverhead + int64(len(sections[tag]))
	}
	sections["csr3"] = encodeCSR3(snap.DB, off+8) // +8: csr3's own tag+length frame

	hdr := make([]byte, 0, len(magic)+2)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, FormatVersion)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	for _, tag := range sectionOrderFor(FormatVersion) {
		if err := writeSection(w, tag, sections[tag]); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the snapshot to path atomically: the bytes are
// staged in a same-directory temp file, fsync'd, then renamed into
// place, so a crash mid-write never leaves a torn snapshot where a
// loader (or a -snapshot-dir scan) could find it.
func WriteFile(path string, snap *Snapshot) error {
	return atomicWriteFile(path, func(f *os.File) error { return Write(f, snap) })
}

func writeSection(w io.Writer, tag string, payload []byte) error {
	if len(tag) != 4 {
		return fmt.Errorf("store: internal error: section tag %q is not 4 bytes", tag)
	}
	if len(payload) > maxSectionSize {
		return fmt.Errorf("store: section %q exceeds %d bytes", tag, maxSectionSize)
	}
	frame := make([]byte, 0, 4+4)
	frame = append(frame, tag...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("store: write section %q: %w", tag, err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("store: write section %q: %w", tag, err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("store: write section %q checksum: %w", tag, err)
	}
	return nil
}

// stringTable interns strings for the graph sections.
type stringTable struct {
	index map[string]uint64
	list  []string
}

func newStringTable() *stringTable {
	return &stringTable{index: make(map[string]uint64)}
}

func (t *stringTable) ref(s string) uint64 {
	if i, ok := t.index[s]; ok {
		return i
	}
	i := uint64(len(t.list))
	t.index[s] = i
	t.list = append(t.list, s)
	return i
}

func (t *stringTable) encode() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(t.list)))
	for _, s := range t.list {
		b = appendString(b, s)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func encodeMeta(m Meta) []byte {
	var b []byte
	b = appendString(b, m.Name)
	b = appendString(b, m.Corpus)
	for _, v := range []int{
		m.Stats.ClassNodes, m.Stats.MethodNodes, m.Stats.ExtendEdges,
		m.Stats.InterfaceEdges, m.Stats.HasEdges, m.Stats.CallEdges,
		m.Stats.PrunedCalls, m.Stats.AliasEdges,
		m.TotalCalls, m.PrunedCalls,
	} {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

func encodeSinks(reg *sinks.Registry) []byte {
	var all []sinks.Sink
	if reg != nil {
		all = reg.All()
	}
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(all)))
	for _, s := range all {
		b = appendString(b, s.Class)
		b = appendString(b, s.Method)
		b = appendString(b, string(s.Type))
		b = binary.AppendUvarint(b, uint64(len(s.TC)))
		for _, tc := range s.TC {
			b = binary.AppendVarint(b, int64(tc))
		}
	}
	return b
}

func encodeSources(src sinks.SourceConfig) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(src.MethodNames)))
	for _, n := range src.MethodNames {
		b = appendString(b, n)
	}
	if src.RequireSerializable {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func encodeProps(b []byte, owner string, props graphdb.Props, tab *stringTable) ([]byte, error) {
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = binary.AppendUvarint(b, tab.ref(k))
		var err error
		b, err = encodeValue(b, props[k], tab)
		if err != nil {
			return nil, fmt.Errorf("store: %s property %q: %w", owner, k, err)
		}
	}
	return b, nil
}

func encodeValue(b []byte, v any, tab *stringTable) ([]byte, error) {
	switch t := v.(type) {
	case bool:
		b = append(b, tagBool)
		if t {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case int:
		b = append(b, tagInt)
		return binary.AppendVarint(b, int64(t)), nil
	case int64:
		b = append(b, tagInt)
		return binary.AppendVarint(b, t), nil
	case float64:
		b = append(b, tagFloat)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(t)), nil
	case string:
		b = append(b, tagString)
		return binary.AppendUvarint(b, tab.ref(t)), nil
	case []int:
		b = append(b, tagInts)
		b = binary.AppendUvarint(b, uint64(len(t)))
		for _, e := range t {
			b = binary.AppendVarint(b, int64(e))
		}
		return b, nil
	default:
		return nil, fmt.Errorf("unsupported value type %T", v)
	}
}

func encodeNodes(nodes []*graphdb.Node, tab *stringTable) ([]byte, error) {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(nodes)))
	for _, n := range nodes {
		b = binary.AppendUvarint(b, uint64(n.ID))
		b = binary.AppendUvarint(b, uint64(len(n.Labels)))
		for _, l := range n.Labels {
			b = binary.AppendUvarint(b, tab.ref(l))
		}
		var err error
		b, err = encodeProps(b, fmt.Sprintf("node %d", n.ID), n.Props, tab)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

func encodeRels(rels []*graphdb.Rel, tab *stringTable) ([]byte, error) {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(rels)))
	for _, r := range rels {
		b = binary.AppendUvarint(b, uint64(r.ID))
		b = binary.AppendUvarint(b, tab.ref(r.Type))
		b = binary.AppendUvarint(b, uint64(r.Start))
		b = binary.AppendUvarint(b, uint64(r.End))
		var err error
		b, err = encodeProps(b, fmt.Sprintf("rel %d", r.ID), r.Props, tab)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

func encodeIndexes(ixs []graphdb.IndexSpec, tab *stringTable) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(ixs)))
	for _, ix := range ixs {
		b = binary.AppendUvarint(b, tab.ref(ix.Label))
		b = binary.AppendUvarint(b, tab.ref(ix.Prop))
	}
	return b
}

// --- reading -------------------------------------------------------------

// Read decodes a snapshot from r, verifying the format version and every
// section checksum. The returned snapshot's store is frozen: it serves
// concurrent reads and rejects mutation.
func Read(r io.Reader) (*Snapshot, error) {
	hdr := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("store: read header: %w (not a tabby snapshot, or truncated)", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("store: bad magic %q: not a tabby snapshot file", hdr[:len(magic)])
	}
	version := binary.LittleEndian.Uint16(hdr[len(magic):])
	if version < 1 || version > FormatVersion {
		return nil, fmt.Errorf("store: unsupported snapshot format version %d (this build reads versions 1–%d)", version, FormatVersion)
	}

	order := sectionOrderFor(version)
	payloads := make(map[string][]byte, len(order))
	for _, want := range order {
		tag, payload, err := readSection(r, order)
		if err != nil {
			return nil, err
		}
		if tag != want {
			return nil, fmt.Errorf("store: unexpected section %q (want %q): file corrupted or out of order", tag, want)
		}
		payloads[tag] = payload
	}

	snap := &Snapshot{}
	var err error
	if snap.Meta, err = decodeMeta(payloads["meta"]); err != nil {
		return nil, err
	}
	if snap.Sinks, err = decodeSinks(payloads["sink"]); err != nil {
		return nil, err
	}
	if snap.Sources, err = decodeSources(payloads["srcs"]); err != nil {
		return nil, err
	}
	tab, err := decodeStrings(payloads["strs"])
	if err != nil {
		return nil, err
	}
	ex := &graphdb.Export{}
	if ex.Nodes, err = decodeNodes(payloads["node"], tab); err != nil {
		return nil, err
	}
	if ex.Rels, err = decodeRels(payloads["rels"], tab); err != nil {
		return nil, err
	}
	if ex.Indexes, err = decodeIndexes(payloads["indx"], tab); err != nil {
		return nil, err
	}
	if version >= 2 {
		if snap.Summaries, err = decodeSummaries(payloads["sumc"], tab); err != nil {
			return nil, err
		}
	}
	db, err := graphdb.Import(ex)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	db.Freeze()
	snap.DB = db
	return snap, nil
}

// ReadFile loads a snapshot from path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func readSection(r io.Reader, allowed []string) (tag string, payload []byte, err error) {
	frame := make([]byte, 8)
	if _, err := io.ReadFull(r, frame); err != nil {
		return "", nil, fmt.Errorf("store: read section frame: %w (file truncated?)", err)
	}
	tag = string(frame[:4])
	size := binary.LittleEndian.Uint32(frame[4:])
	known := false
	for _, t := range allowed {
		if t == tag {
			known = true
			break
		}
	}
	if !known {
		return "", nil, fmt.Errorf("store: unknown section tag %q: file corrupted", tag)
	}
	if size > maxSectionSize {
		return "", nil, fmt.Errorf("store: section %q declares %d bytes (max %d): file corrupted", tag, size, maxSectionSize)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return "", nil, fmt.Errorf("store: read section %q payload: %w (file truncated?)", tag, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return "", nil, fmt.Errorf("store: read section %q checksum: %w (file truncated?)", tag, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(sum[:]); got != want {
		return "", nil, fmt.Errorf("store: section %q checksum mismatch (got %08x, want %08x): file corrupted", tag, got, want)
	}
	return tag, payload, nil
}

// decoder walks one section payload with bounds-checked reads.
type decoder struct {
	buf     []byte
	off     int
	section string
}

func (d *decoder) fail(what string) error {
	return fmt.Errorf("store: section %q: truncated %s at offset %d", d.section, what, d.off)
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, d.fail(what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint(what string) (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, d.fail(what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) count(what string) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	// A count cannot exceed the remaining payload (every element takes at
	// least one byte), so a corrupt count fails here instead of in a huge
	// allocation.
	if v > uint64(len(d.buf)-d.off) {
		return 0, fmt.Errorf("store: section %q: %s count %d exceeds remaining payload: file corrupted", d.section, what, v)
	}
	return int(v), nil
}

func (d *decoder) byte(what string) (byte, error) {
	if d.off >= len(d.buf) {
		return 0, d.fail(what)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) str(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.off) {
		return "", d.fail(what)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) ref(tab []string, what string) (string, error) {
	i, err := d.uvarint(what)
	if err != nil {
		return "", err
	}
	if i >= uint64(len(tab)) {
		return "", fmt.Errorf("store: section %q: %s references string %d of %d: file corrupted", d.section, what, i, len(tab))
	}
	return tab[i], nil
}

func (d *decoder) done() error {
	if d.off != len(d.buf) {
		return fmt.Errorf("store: section %q: %d trailing bytes: file corrupted", d.section, len(d.buf)-d.off)
	}
	return nil
}

func decodeMeta(pay []byte) (Meta, error) {
	d := &decoder{buf: pay, section: "meta"}
	var m Meta
	var err error
	if m.Name, err = d.str("name"); err != nil {
		return m, err
	}
	if m.Corpus, err = d.str("corpus"); err != nil {
		return m, err
	}
	fields := []*int{
		&m.Stats.ClassNodes, &m.Stats.MethodNodes, &m.Stats.ExtendEdges,
		&m.Stats.InterfaceEdges, &m.Stats.HasEdges, &m.Stats.CallEdges,
		&m.Stats.PrunedCalls, &m.Stats.AliasEdges,
		&m.TotalCalls, &m.PrunedCalls,
	}
	for _, f := range fields {
		v, err := d.varint("counter")
		if err != nil {
			return m, err
		}
		*f = int(v)
	}
	return m, d.done()
}

func decodeSinks(pay []byte) (*sinks.Registry, error) {
	d := &decoder{buf: pay, section: "sink"}
	n, err := d.count("sink")
	if err != nil {
		return nil, err
	}
	list := make([]sinks.Sink, 0, n)
	for i := 0; i < n; i++ {
		var s sinks.Sink
		if s.Class, err = d.str("sink class"); err != nil {
			return nil, err
		}
		if s.Method, err = d.str("sink method"); err != nil {
			return nil, err
		}
		typ, err := d.str("sink type")
		if err != nil {
			return nil, err
		}
		s.Type = sinks.Type(typ)
		tcn, err := d.count("trigger condition")
		if err != nil {
			return nil, err
		}
		s.TC = make([]int, tcn)
		for j := range s.TC {
			v, err := d.varint("trigger position")
			if err != nil {
				return nil, err
			}
			s.TC[j] = int(v)
		}
		list = append(list, s)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	reg, err := sinks.NewRegistry(list)
	if err != nil {
		return nil, fmt.Errorf("store: section \"sink\": %w", err)
	}
	return reg, nil
}

func decodeSources(pay []byte) (sinks.SourceConfig, error) {
	d := &decoder{buf: pay, section: "srcs"}
	var src sinks.SourceConfig
	n, err := d.count("source method")
	if err != nil {
		return src, err
	}
	for i := 0; i < n; i++ {
		name, err := d.str("source method name")
		if err != nil {
			return src, err
		}
		src.MethodNames = append(src.MethodNames, name)
	}
	b, err := d.byte("require-serializable flag")
	if err != nil {
		return src, err
	}
	src.RequireSerializable = b != 0
	return src, d.done()
}

func decodeStrings(pay []byte) ([]string, error) {
	d := &decoder{buf: pay, section: "strs"}
	n, err := d.count("string")
	if err != nil {
		return nil, err
	}
	tab := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s, err := d.str("string")
		if err != nil {
			return nil, err
		}
		tab = append(tab, s)
	}
	return tab, d.done()
}

func decodeProps(d *decoder, tab []string) (graphdb.Props, error) {
	n, err := d.count("property")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	props := make(graphdb.Props, n)
	for i := 0; i < n; i++ {
		key, err := d.ref(tab, "property key")
		if err != nil {
			return nil, err
		}
		v, err := decodeValue(d, tab)
		if err != nil {
			return nil, err
		}
		props[key] = v
	}
	return props, nil
}

func decodeValue(d *decoder, tab []string) (any, error) {
	tag, err := d.byte("value tag")
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagBool:
		b, err := d.byte("bool value")
		if err != nil {
			return nil, err
		}
		return b != 0, nil
	case tagInt:
		v, err := d.varint("int value")
		if err != nil {
			return nil, err
		}
		return int(v), nil
	case tagFloat:
		if len(d.buf)-d.off < 8 {
			return nil, d.fail("float value")
		}
		bits := binary.LittleEndian.Uint64(d.buf[d.off:])
		d.off += 8
		return math.Float64frombits(bits), nil
	case tagString:
		return d.ref(tab, "string value")
	case tagInts:
		n, err := d.count("int-list value")
		if err != nil {
			return nil, err
		}
		out := make([]int, n)
		for i := range out {
			v, err := d.varint("int-list element")
			if err != nil {
				return nil, err
			}
			out[i] = int(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("store: section %q: unknown value tag 0x%02x at offset %d: file corrupted", d.section, tag, d.off-1)
	}
}

func decodeNodes(pay []byte, tab []string) ([]*graphdb.Node, error) {
	d := &decoder{buf: pay, section: "node"}
	n, err := d.count("node")
	if err != nil {
		return nil, err
	}
	nodes := make([]*graphdb.Node, 0, n)
	for i := 0; i < n; i++ {
		id, err := d.uvarint("node ID")
		if err != nil {
			return nil, err
		}
		ln, err := d.count("label")
		if err != nil {
			return nil, err
		}
		labels := make([]string, ln)
		for j := range labels {
			if labels[j], err = d.ref(tab, "label"); err != nil {
				return nil, err
			}
		}
		props, err := decodeProps(d, tab)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, &graphdb.Node{ID: graphdb.ID(id), Labels: labels, Props: props})
	}
	return nodes, d.done()
}

func decodeRels(pay []byte, tab []string) ([]*graphdb.Rel, error) {
	d := &decoder{buf: pay, section: "rels"}
	n, err := d.count("rel")
	if err != nil {
		return nil, err
	}
	rels := make([]*graphdb.Rel, 0, n)
	for i := 0; i < n; i++ {
		id, err := d.uvarint("rel ID")
		if err != nil {
			return nil, err
		}
		typ, err := d.ref(tab, "rel type")
		if err != nil {
			return nil, err
		}
		start, err := d.uvarint("rel start")
		if err != nil {
			return nil, err
		}
		end, err := d.uvarint("rel end")
		if err != nil {
			return nil, err
		}
		props, err := decodeProps(d, tab)
		if err != nil {
			return nil, err
		}
		rels = append(rels, &graphdb.Rel{
			ID: graphdb.ID(id), Type: typ,
			Start: graphdb.ID(start), End: graphdb.ID(end), Props: props,
		})
	}
	return rels, d.done()
}

func decodeIndexes(pay []byte, tab []string) ([]graphdb.IndexSpec, error) {
	d := &decoder{buf: pay, section: "indx"}
	n, err := d.count("index")
	if err != nil {
		return nil, err
	}
	ixs := make([]graphdb.IndexSpec, 0, n)
	for i := 0; i < n; i++ {
		var ix graphdb.IndexSpec
		if ix.Label, err = d.ref(tab, "index label"); err != nil {
			return nil, err
		}
		if ix.Prop, err = d.ref(tab, "index property"); err != nil {
			return nil, err
		}
		ixs = append(ixs, ix)
	}
	return ixs, d.done()
}
