package store

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"tabby/internal/taint"
)

// downgradeTo rewrites a current-format snapshot into an older-version
// file: same sections in the same order minus the ones that version
// lacks ("sumc" before v2, "csr3" before v3), version field rewritten.
// This is byte-exact what the older writer produced — csr3 is the last
// payload section, so dropping it does not move any section the older
// readers parse — and stands in for snapshots written by prior builds.
func downgradeTo(t *testing.T, data []byte, version uint16) []byte {
	t.Helper()
	keep := make(map[string]bool)
	for _, tag := range sectionOrderFor(version) {
		keep[tag] = true
	}
	hdrLen := len(magic) + 2
	out := append([]byte(nil), data[:hdrLen]...)
	binary.LittleEndian.PutUint16(out[len(magic):], version)
	rest := data[hdrLen:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			t.Fatalf("trailing %d bytes are not a section frame", len(rest))
		}
		tag := string(rest[:4])
		size := binary.LittleEndian.Uint32(rest[4:8])
		end := 8 + int(size) + 4 // frame + payload + crc
		if len(rest) < end {
			t.Fatalf("section %q overruns the file", tag)
		}
		if keep[tag] {
			out = append(out, rest[:end]...)
		}
		rest = rest[end:]
	}
	return out
}

func downgradeToV1(t *testing.T, data []byte) []byte {
	return downgradeTo(t, data, 1)
}

// TestReadV1SnapshotBackwardCompat: a snapshot without the summary-cache
// section (the version-1 layout) must still load, with everything except
// Summaries identical.
func TestReadV1SnapshotBackwardCompat(t *testing.T) {
	snap := buildSnapshot(t)
	v1 := downgradeToV1(t, encodeSnapshot(t, snap))
	got, err := Read(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("reading v1 snapshot: %v", err)
	}
	if got.Summaries != nil {
		t.Errorf("v1 snapshot decoded %d summary cones, want none", len(got.Summaries))
	}
	if !reflect.DeepEqual(got.Meta, snap.Meta) {
		t.Errorf("meta differs:\n got %+v\nwant %+v", got.Meta, snap.Meta)
	}
	if !reflect.DeepEqual(got.Sinks.All(), snap.Sinks.All()) {
		t.Errorf("sinks differ after v1 load")
	}
	if !reflect.DeepEqual(got.DB.Export(), snap.DB.Export()) {
		t.Errorf("graph differs after v1 load")
	}
	// Saving a v1-loaded snapshot re-encodes at the current version with
	// an empty summary section — and loads again.
	var buf bytes.Buffer
	if err := Write(&buf, got); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("re-reading upgraded snapshot: %v", err)
	}
}

// TestReadV1RejectsSummarySection: the version gates the section order,
// so a file claiming version 1 while carrying a "sumc" section is
// corrupt, not silently tolerated.
func TestReadV1RejectsSummarySection(t *testing.T) {
	data := encodeSnapshot(t, buildSnapshot(t))
	bad := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(bad[len(magic):], 1)
	_, err := Read(bytes.NewReader(bad))
	if err == nil {
		t.Fatal("v1 header over a v2 body read successfully")
	}
}

// TestV1TruncationAndFlips runs the exhaustive corruption suite over the
// synthesized v1 layout too: every truncation and every byte flip must
// error, never panic.
func TestV1TruncationAndFlips(t *testing.T) {
	v1 := downgradeToV1(t, encodeSnapshot(t, buildSnapshot(t)))
	if _, err := Read(bytes.NewReader(v1)); err != nil {
		t.Fatalf("pristine v1 file must read: %v", err)
	}
	for n := 0; n < len(v1); n++ {
		if _, err := Read(bytes.NewReader(v1[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes read successfully", n, len(v1))
		}
	}
	bad := make([]byte, len(v1))
	for i := range v1 {
		copy(bad, v1)
		bad[i] ^= 0xff
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipping byte %d/%d still read successfully", i, len(v1))
		}
	}
}

func encodeSummariesFile(t *testing.T, entries []taint.ConeEntry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSummaries(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSummariesRoundTrip covers the standalone "TABBYSUM" cache file and
// its interaction with the in-memory cache: file → entries → cache →
// export must reproduce the entries (Export returns fingerprint order).
func TestSummariesRoundTrip(t *testing.T) {
	entries := buildSummaries()
	data := encodeSummariesFile(t, entries)
	got, err := ReadSummaries(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Errorf("summaries differ after round trip:\n got %+v\nwant %+v", got, entries)
	}
	reexported := taint.ImportSummaryCache(got).Export()
	if !reflect.DeepEqual(reexported, entries) {
		t.Errorf("import+export changed the entries")
	}

	path := t.TempDir() + "/cache.tabbysum"
	if err := WriteSummariesFile(path, entries); err != nil {
		t.Fatal(err)
	}
	fromFile, err := ReadSummariesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile, entries) {
		t.Errorf("file round trip differs")
	}
	if _, err := ReadSummariesFile(t.TempDir() + "/missing.tabbysum"); err == nil {
		t.Error("missing cache file must error")
	}
}

// TestSummariesRejectCorruption applies the snapshot suite's exhaustive
// truncation and byte-flip checks to the standalone cache file.
func TestSummariesRejectCorruption(t *testing.T) {
	data := encodeSummariesFile(t, buildSummaries())
	for n := 0; n < len(data); n++ {
		if _, err := ReadSummaries(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes read successfully", n, len(data))
		}
	}
	bad := make([]byte, len(data))
	for i := range data {
		copy(bad, data)
		bad[i] ^= 0xff
		if _, err := ReadSummaries(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipping byte %d/%d still read successfully", i, len(data))
		}
	}
}

// TestSummariesRejectWrongMagicAndVersion pins the header diagnostics.
func TestSummariesRejectWrongMagicAndVersion(t *testing.T) {
	data := encodeSummariesFile(t, buildSummaries())
	if _, err := ReadSummaries(bytes.NewReader([]byte("TABBYSNP"))); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Errorf("short header: err = %v", err)
	}
	badMagic := append([]byte(nil), data...)
	copy(badMagic, "NOTACACH")
	if _, err := ReadSummaries(bytes.NewReader(badMagic)); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}
	badVer := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(badVer[len(summaryMagic):], SummaryFormatVersion+1)
	if _, err := ReadSummaries(bytes.NewReader(badVer)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: err = %v", err)
	}
}
