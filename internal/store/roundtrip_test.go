package store_test

// Round-trip invariants over the real evaluation corpus: saving a built
// CPG and loading it back must leave Cypher-lite queries, path-finder
// searches, and graph statistics byte-identical to the freshly built
// graph — the correctness contract that lets tabby-server answer for the
// pipeline. The full sweep covers every Table IX component plus the
// Spring scene (skipped under -short, like the core determinism sweep).

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"tabby/internal/core"
	"tabby/internal/corpus"
	"tabby/internal/cypher"
	"tabby/internal/javasrc"
	"tabby/internal/store"
)

// probeQueries is the query battery compared between fresh and loaded
// graphs; it touches label scans, index lookups, property filters,
// variable-length path expansion, aggregation, and the CALL procedures.
var probeQueries = []string{
	`MATCH (m:Method {IS_SINK: true}) RETURN m.NAME, m.SINK_TYPE`,
	`MATCH (m:Method {IS_SOURCE: true}) RETURN m.NAME LIMIT 25`,
	`MATCH (m:Method) RETURN m.IS_SINK, COUNT(*)`,
	`MATCH (c:Class)-[:HAS]->(m:Method {IS_SINK: true}) RETURN c.NAME, m.METHOD_NAME`,
	`CALL tabby.findGadgetChains(12)`,
	`CALL tabby.sinks()`,
	`CALL tabby.sources()`,
}

// queryDump renders the battery against one store; byte-equal output
// means every row, column, and ordering survived.
func queryDump(t *testing.T, g *store.Snapshot) string {
	t.Helper()
	var buf bytes.Buffer
	st := g.DB.Stats()
	fmt.Fprintf(&buf, "stats: %+v\n", st)
	for _, q := range probeQueries {
		res, err := cypher.RunAny(g.DB, q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		fmt.Fprintf(&buf, "query> %s\n%s\n", q, res.Format())
	}
	return buf.String()
}

func roundTrip(t *testing.T, name string, archives []javasrc.ArchiveSource) {
	t.Helper()
	engine := core.New(core.Options{Workers: 1})
	rep, err := engine.AnalyzeSources(archives)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := engine.SaveSnapshot(&buf, rep, name, "round-trip corpus"); err != nil {
		t.Fatal(err)
	}
	snap, err := core.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// 1. Graph-level equality: the loaded store exports the same nodes,
	//    rels, and index specs as the fresh one.
	if !reflect.DeepEqual(snap.DB.Export(), rep.Graph.DB.Export()) {
		t.Fatal("loaded graph export differs from fresh build")
	}

	// 2. Query-level equality: the formatted output of the probe battery
	//    is byte-identical.
	fresh := queryDump(t, &store.Snapshot{DB: rep.Graph.DB})
	loaded := queryDump(t, snap)
	if fresh != loaded {
		t.Errorf("query battery differs between fresh and loaded graph\nfresh:\n%s\nloaded:\n%s", fresh, loaded)
	}

	// 3. Search-level equality: the path finder over the loaded store
	//    reproduces the pipeline's chains exactly, and stays identical at
	//    every worker count.
	base, truncated, err := engine.FindChainsIn(snap.DB)
	if err != nil {
		t.Fatal(err)
	}
	if truncated != rep.Truncated {
		t.Errorf("truncated = %v on loaded store, %v fresh", truncated, rep.Truncated)
	}
	if !reflect.DeepEqual(base, rep.Chains) {
		t.Errorf("chains differ on loaded store\n got %+v\nwant %+v", base, rep.Chains)
	}
	for _, workers := range []int{2, 4} {
		w := core.New(core.Options{Workers: workers})
		got, _, err := w.FindChainsIn(snap.DB)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: chains on loaded snapshot differ from sequential", workers)
		}
	}

	// 4. Metadata: the snapshot carried the builder's counters.
	if snap.Meta.Stats != rep.Graph.Stats {
		t.Errorf("meta stats = %+v, want %+v", snap.Meta.Stats, rep.Graph.Stats)
	}
	if rep.Graph.Taint != nil && snap.Meta.TotalCalls != rep.Graph.Taint.TotalCalls {
		t.Errorf("meta total calls = %d, want %d", snap.Meta.TotalCalls, rep.Graph.Taint.TotalCalls)
	}
}

// TestRoundTripURLDNS always runs: the modeled runtime alone is the
// cheapest corpus with chains.
func TestRoundTripURLDNS(t *testing.T) {
	roundTrip(t, "urldns", []javasrc.ArchiveSource{corpus.RT()})
}

// TestRoundTripAllComponents sweeps every Table IX component plus the
// Spring scene.
func TestRoundTripAllComponents(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus round-trip sweep")
	}
	for _, comp := range corpus.Components() {
		comp := comp
		t.Run("component/"+comp.Name, func(t *testing.T) {
			roundTrip(t, comp.Name, append([]javasrc.ArchiveSource{corpus.RT()}, comp.Archives...))
		})
	}
	spring, err := corpus.SceneByName("Spring")
	if err != nil {
		t.Fatal(err)
	}
	t.Run("scene/Spring", func(t *testing.T) {
		roundTrip(t, "Spring", append([]javasrc.ArchiveSource{corpus.RT()}, spring.Archives...))
	})
}
