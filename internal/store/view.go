// Zero-copy snapshot views. A version-3 snapshot carries a "csr3"
// section holding the compiled search index as aligned little-endian
// arrays (searchindex.AppendLayout); Mapped frames the raw file bytes
// — typically an mmap'd region — without decoding the graph, so a
// server can start answering /v1/chains and /v1/query from the index
// view alone and only pay the full parse if an interpreter fallback or
// unindexed property actually needs the generic store.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"tabby/internal/graphdb"
	"tabby/internal/searchindex"
)

// sectionRef locates one section's payload inside a snapshot's bytes.
type sectionRef struct {
	tag string
	off int64 // payload offset from the start of the file
	len int64
}

// Mapped is a structural view over the raw bytes of a snapshot file.
// Construction (ViewBytes) walks the section framing and CRC-checks
// the small metadata sections plus csr3 — the sections a zero-copy
// server actually serves from — but leaves the graph payloads
// untouched; Snapshot() runs the full checked decode on demand.
type Mapped struct {
	data     []byte
	version  uint16
	sections map[string]sectionRef
}

// ViewBytes frames data as a snapshot without decoding the graph. The
// returned view aliases data; the caller owns the mapping's lifetime.
// The meta and csr3 payloads are checksum-verified here (they may be
// served without ever running the full parse); the remaining sections
// are bounds-checked only and get their CRC verification inside
// Snapshot's reader.
func ViewBytes(data []byte) (*Mapped, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("store: %d bytes: not a tabby snapshot file", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("store: bad magic %q: not a tabby snapshot file", data[:len(magic)])
	}
	version := binary.LittleEndian.Uint16(data[len(magic):])
	if version < 1 || version > FormatVersion {
		return nil, fmt.Errorf("store: unsupported snapshot format version %d (this build reads versions 1–%d)", version, FormatVersion)
	}
	m := &Mapped{data: data, version: version, sections: make(map[string]sectionRef)}
	off := int64(headerLen)
	for _, want := range sectionOrderFor(version) {
		if off+8 > int64(len(data)) {
			return nil, fmt.Errorf("store: section frame truncated at offset %d (want %q)", off, want)
		}
		tag := string(data[off : off+4])
		if tag != want {
			return nil, fmt.Errorf("store: unexpected section %q (want %q): file corrupted or out of order", tag, want)
		}
		size := int64(binary.LittleEndian.Uint32(data[off+4:]))
		if size > maxSectionSize {
			return nil, fmt.Errorf("store: section %q declares %d bytes (max %d): file corrupted", tag, size, maxSectionSize)
		}
		payOff := off + 8
		if payOff+size+4 > int64(len(data)) {
			return nil, fmt.Errorf("store: section %q payload truncated (%d bytes declared at offset %d)", tag, size, off)
		}
		m.sections[tag] = sectionRef{tag: tag, off: payOff, len: size}
		off = payOff + size + 4
	}
	if off != int64(len(data)) {
		return nil, fmt.Errorf("store: %d trailing bytes after final section: file corrupted", int64(len(data))-off)
	}
	for _, tag := range []string{"meta", "csr3"} {
		if err := m.checkCRC(tag); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// checkCRC verifies one section's stored checksum (no-op for sections
// the version doesn't carry).
func (m *Mapped) checkCRC(tag string) error {
	s, ok := m.sections[tag]
	if !ok {
		return nil
	}
	pay := m.data[s.off : s.off+s.len]
	want := binary.LittleEndian.Uint32(m.data[s.off+s.len:])
	if got := crc32.ChecksumIEEE(pay); got != want {
		return fmt.Errorf("store: section %q checksum mismatch (got %08x, want %08x): file corrupted", tag, got, want)
	}
	return nil
}

// Version returns the snapshot's format version.
func (m *Mapped) Version() uint16 { return m.version }

// HasIndex reports whether the snapshot carries a csr3 section — i.e.
// whether it can be served zero-copy at all.
func (m *Mapped) HasIndex() bool {
	_, ok := m.sections["csr3"]
	return ok
}

// Meta decodes the (CRC-verified) metadata section.
func (m *Mapped) Meta() (Meta, error) {
	s, ok := m.sections["meta"]
	if !ok {
		return Meta{}, fmt.Errorf("store: snapshot has no meta section")
	}
	return decodeMeta(m.data[s.off : s.off+s.len])
}

// Index views the csr3 section as a ready-to-serve search index. The
// returned index and stats alias m's bytes — zero copy, O(labels +
// relationship types) allocation — and stay valid only while the
// mapping does. Fails cleanly when the snapshot predates v3 or the
// host is big-endian; callers then fall back to Snapshot().
func (m *Mapped) Index() (*searchindex.Index, graphdb.Stats, error) {
	s, ok := m.sections["csr3"]
	if !ok {
		return nil, graphdb.Stats{}, fmt.Errorf("store: snapshot format version %d carries no index section (zero-copy serving needs version 3)", m.version)
	}
	return decodeCSR3(m.data[s.off:s.off+s.len], s.off)
}

// Snapshot runs the full checked decode — every section CRC-verified,
// graph materialized into a frozen heap store. This is the slow path
// zero-copy serving exists to avoid; backends call it lazily when a
// query genuinely needs the generic property store.
func (m *Mapped) Snapshot() (*Snapshot, error) {
	return Read(bytes.NewReader(m.data))
}

// encodeCSR3 builds the csr3 payload: a varint-encoded graph-stats
// block (so /v1/graphs/{id}/stats never needs the heap parse) followed
// by the compiled index layout. payOff is the payload's absolute file
// offset — AppendLayout pads its arrays to 8-byte *file* alignment.
func encodeCSR3(db *graphdb.DB, payOff int64) []byte {
	ix := searchindex.For(db)
	stats := encodeGraphStats(db.Stats())
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(stats)))
	b = append(b, stats...)
	return ix.AppendLayout(b, payOff+int64(len(b)))
}

// decodeCSR3 views a csr3 payload located at absolute file offset
// payOff.
func decodeCSR3(pay []byte, payOff int64) (*searchindex.Index, graphdb.Stats, error) {
	if len(pay) < 4 {
		return nil, graphdb.Stats{}, fmt.Errorf("store: section \"csr3\": truncated stats block")
	}
	statsLen := int64(binary.LittleEndian.Uint32(pay))
	if statsLen > int64(len(pay))-4 {
		return nil, graphdb.Stats{}, fmt.Errorf("store: section \"csr3\": stats block overruns payload")
	}
	stats, err := decodeGraphStats(pay[4 : 4+statsLen])
	if err != nil {
		return nil, graphdb.Stats{}, err
	}
	ix, err := searchindex.FromLayout(pay[4+statsLen:], payOff+4+statsLen)
	if err != nil {
		return nil, graphdb.Stats{}, fmt.Errorf("store: section \"csr3\": %w", err)
	}
	return ix, stats, nil
}

// encodeGraphStats serializes the label/type counters (sorted keys,
// deterministic bytes).
func encodeGraphStats(s graphdb.Stats) []byte {
	var b []byte
	b = binary.AppendVarint(b, int64(s.Nodes))
	b = binary.AppendVarint(b, int64(s.Rels))
	for _, m := range []map[string]int{s.NodesByType, s.RelsByType} {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = binary.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = appendString(b, k)
			b = binary.AppendVarint(b, int64(m[k]))
		}
	}
	return b
}

func decodeGraphStats(pay []byte) (graphdb.Stats, error) {
	d := &decoder{buf: pay, section: "csr3"}
	var s graphdb.Stats
	nodes, err := d.varint("node count")
	if err != nil {
		return s, err
	}
	rels, err := d.varint("rel count")
	if err != nil {
		return s, err
	}
	s.Nodes, s.Rels = int(nodes), int(rels)
	for _, dst := range []*map[string]int{&s.NodesByType, &s.RelsByType} {
		n, err := d.count("stats entry")
		if err != nil {
			return s, err
		}
		*dst = make(map[string]int, n)
		for i := 0; i < n; i++ {
			k, err := d.str("stats key")
			if err != nil {
				return s, err
			}
			v, err := d.varint("stats value")
			if err != nil {
				return s, err
			}
			(*dst)[k] = int(v)
		}
	}
	return s, d.done()
}
