package store

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"tabby/internal/cpg"
	"tabby/internal/graphdb"
	"tabby/internal/jimple"
	"tabby/internal/sinks"
	"tabby/internal/taint"
)

// buildSummaries hand-builds cone entries exercising every field the
// "sumc" codec encodes: field-qualified slots and origins, ∞ and
// positional weights, pruned and kept calls, empty and populated call
// lists.
func buildSummaries() []taint.ConeEntry {
	return []taint.ConeEntry{
		{
			Fingerprint: "cone-aaaa",
			Methods: []taint.MethodSummary{
				{
					Key: "com.example.A#run()",
					Action: taint.Action{
						taint.SlotReturnValue:                 taint.Param(1).WithField("member"),
						taint.SlotThisValue:                   taint.This,
						taint.FinalParam(2):                   taint.Null,
						{Kind: taint.SlotThis, Field: "next"}: taint.Param(2),
					},
					Calls: []taint.CallEdge{
						{
							Caller: "com.example.A#run()", CalleeClass: "com.example.B",
							CalleeSub: "call(java.lang.Object)", Kind: jimple.InvokeVirtual,
							PP: taint.PP{0, taint.WeightUnctrl, 2}, StmtIndex: 3,
						},
						{
							Caller: "com.example.A#run()", CalleeClass: "com.example.C",
							CalleeSub: "quiet()", Kind: jimple.InvokeStatic,
							PP: taint.PP{taint.WeightUnctrl}, StmtIndex: 9, Pruned: true,
						},
					},
				},
			},
		},
		{
			Fingerprint: "cone-bbbb",
			Methods: []taint.MethodSummary{
				{Key: "com.example.B#call(java.lang.Object)", Action: taint.Action{taint.SlotReturnValue: taint.Null}},
			},
		},
	}
}

// buildSnapshot constructs a small hand-made snapshot exercising every
// property value type the codec supports (bool, int, float64, string,
// []int) plus nil prop maps, rel props, and indexes.
func buildSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	db := graphdb.New()
	a := db.CreateNode([]string{"Class"}, graphdb.Props{
		"NAME":       "com.example.A",
		"IS_ABS":     false,
		"SCORE":      1.5,
		"POSITIONS":  []int{0, -1, 2},
		"FIELD_SLOT": 7,
	})
	b := db.CreateNode([]string{"Method"}, graphdb.Props{
		"NAME":    "com.example.A#run()",
		"IS_SINK": true,
	})
	c := db.CreateNode([]string{"Method"}, nil)
	if _, err := db.CreateRel("HAS", a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRel("CALL", b, c, graphdb.Props{"LINE": 42, "KIND": "virtual"}); err != nil {
		t.Fatal(err)
	}
	db.CreateIndex("Method", "NAME")
	db.CreateIndex("Class", "NAME")

	reg, err := sinks.NewRegistry([]sinks.Sink{
		{Class: "com.example.A", Method: "run", Type: sinks.TypeExec, TC: []int{0, 1}},
		{Class: "com.example.B", Method: "call", Type: sinks.TypeJNDI, TC: []int{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Snapshot{
		Meta: Meta{
			Name:   "unit",
			Corpus: "hand-built",
			Stats: cpg.Stats{
				ClassNodes: 1, MethodNodes: 2, HasEdges: 1, CallEdges: 1,
				PrunedCalls: 3,
			},
			TotalCalls:  10,
			PrunedCalls: 3,
		},
		DB:      db,
		Sinks:   reg,
		Sources: sinks.SourceConfig{MethodNames: []string{"readObject"}, RequireSerializable: true},
		// Populated summaries extend the truncate/flip corruption suites
		// below to a non-trivial "sumc" section.
		Summaries: buildSummaries(),
	}
}

func encodeSnapshot(t *testing.T, snap *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripPreservesEverything(t *testing.T) {
	snap := buildSnapshot(t)
	data := encodeSnapshot(t, snap)

	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Meta, snap.Meta) {
		t.Errorf("meta:\n got %+v\nwant %+v", got.Meta, snap.Meta)
	}
	if !reflect.DeepEqual(got.Sinks.All(), snap.Sinks.All()) {
		t.Errorf("sinks:\n got %+v\nwant %+v", got.Sinks.All(), snap.Sinks.All())
	}
	if !reflect.DeepEqual(got.Sources, snap.Sources) {
		t.Errorf("sources:\n got %+v\nwant %+v", got.Sources, snap.Sources)
	}
	if !reflect.DeepEqual(got.DB.Export(), snap.DB.Export()) {
		t.Errorf("graph export differs after round trip")
	}
	if !reflect.DeepEqual(got.Summaries, snap.Summaries) {
		t.Errorf("summaries:\n got %+v\nwant %+v", got.Summaries, snap.Summaries)
	}
	if !got.DB.Frozen() {
		t.Error("loaded store must be frozen")
	}
	// A frozen store still serves reads.
	if ids := got.DB.FindNodes("Method", "NAME", "com.example.A#run()"); len(ids) != 1 {
		t.Errorf("index lookup on loaded store: %v", ids)
	}
}

func TestRoundTripIsByteStable(t *testing.T) {
	snap := buildSnapshot(t)
	data := encodeSnapshot(t, snap)
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Re-encoding the loaded snapshot must reproduce the file byte for
	// byte: the codec has one canonical form.
	again := encodeSnapshot(t, got)
	if !bytes.Equal(data, again) {
		t.Errorf("re-encoded snapshot differs: %d vs %d bytes", len(data), len(again))
	}
}

func TestWriteRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err == nil {
		t.Error("nil snapshot must error")
	}
	if err := Write(&buf, &Snapshot{}); err == nil {
		t.Error("nil graph must error")
	}
	db := graphdb.New()
	db.CreateNode([]string{"Class"}, graphdb.Props{"BAD": struct{}{}})
	err := Write(&buf, &Snapshot{DB: db})
	if err == nil || !strings.Contains(err.Error(), "unsupported value type") {
		t.Errorf("unsupported prop type: err = %v", err)
	}
}

func TestReadRejectsEmptyAndGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        nil,
		"short header": []byte("TABBY"),
		"bad magic":    append([]byte("NOTASNAP"), 1, 0),
		"garbage":      []byte("this is definitely not a snapshot file at all"),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read succeeded, want error", name)
		}
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	data := encodeSnapshot(t, buildSnapshot(t))
	bad := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(bad[len(magic):], FormatVersion+1)
	_, err := Read(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version: err = %v", err)
	}
}

func TestReadRejectsChecksumMismatch(t *testing.T) {
	data := encodeSnapshot(t, buildSnapshot(t))
	// Flip a byte inside the first section's payload (header is
	// magic+version, then 4-byte tag + 4-byte length).
	off := len(magic) + 2 + 8 + 1
	bad := append([]byte(nil), data...)
	bad[off] ^= 0xff
	_, err := Read(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("flipped payload byte: err = %v", err)
	}
}

// TestReadNeverPanicsOnTruncation truncates the file at every possible
// offset: each prefix must produce an error, never a panic and never a
// silent success.
func TestReadNeverPanicsOnTruncation(t *testing.T) {
	data := encodeSnapshot(t, buildSnapshot(t))
	for n := 0; n < len(data); n++ {
		if _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes read successfully", n, len(data))
		}
	}
}

// TestReadNeverPanicsOnFlippedBytes flips every byte of the file in
// turn. Payload flips must fail the checksum; header/frame flips must
// fail structurally. None may panic.
func TestReadNeverPanicsOnFlippedBytes(t *testing.T) {
	data := encodeSnapshot(t, buildSnapshot(t))
	bad := make([]byte, len(data))
	for i := range data {
		copy(bad, data)
		bad[i] ^= 0xff
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipping byte %d/%d still read successfully", i, len(data))
		}
	}
}

func TestReadFileAndWriteFile(t *testing.T) {
	snap := buildSnapshot(t)
	path := t.TempDir() + "/snap.tsnap"
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Name != "unit" {
		t.Errorf("meta name = %q", got.Meta.Name)
	}
	if _, err := ReadFile(t.TempDir() + "/missing.tsnap"); err == nil {
		t.Error("missing file must error")
	}
}

func TestFrozenStoreRejectsMutation(t *testing.T) {
	data := encodeSnapshot(t, buildSnapshot(t))
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("mutating a frozen store must panic")
		}
	}()
	got.DB.CreateNode([]string{"Class"}, nil)
}
