package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// TempSuffix marks in-flight snapshot writes. atomicWriteFile stages
// into "<name>.tmp-*" files in the destination directory; directory
// scanners (tabby-server -snapshot-dir) skip names containing it so a
// crashed write is never registered as a snapshot.
const TempSuffix = ".tmp-"

// IsTempPath reports whether path names an in-flight (or abandoned)
// staged write rather than a committed snapshot.
func IsTempPath(path string) bool {
	return strings.Contains(filepath.Base(path), TempSuffix)
}

// atomicWriteFile writes fill's output to path so that the destination
// is either untouched or complete, never torn: the bytes go to a
// temporary file in the same directory, are fsync'd to disk, and only
// then renamed over path (rename within a directory is atomic on
// POSIX). A crash at any point leaves at worst a stale .tmp- file.
func atomicWriteFile(path string, fill func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+TempSuffix+"*")
	if err != nil {
		return fmt.Errorf("store: stage %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := fill(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", tmp.Name(), err)
	}
	name := tmp.Name()
	tmp = nil // past the point of no return for the deferred cleanup path
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: commit %s: %w", path, err)
	}
	return nil
}
