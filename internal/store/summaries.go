// Summary-cache persistence: the "sumc" snapshot section and the
// standalone cache file written by tabby -cache-dir. Both share one
// payload encoding (interned strings, varints) and the section framing of
// the snapshot format, so the corruption-detection story — checksums,
// bounds-checked decoding, clear errors — is identical.
package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"tabby/internal/java"
	"tabby/internal/jimple"
	"tabby/internal/taint"
)

// SummaryFormatVersion is the standalone summary-cache file format.
const SummaryFormatVersion = 1

const summaryMagic = "TABBYSUM"

// The standalone cache file carries its own string table plus the same
// "sumc" payload a snapshot embeds.
var summaryOrder = []string{"strs", "sumc", "fini"}

// encodeSummaries renders exported cone entries. Method keys, class
// names, sub-signatures and field names repeat heavily across entries, so
// everything stringy goes through the shared table.
func encodeSummaries(entries []taint.ConeEntry, tab *stringTable) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = appendString(b, e.Fingerprint)
		b = binary.AppendUvarint(b, uint64(len(e.Methods)))
		for _, m := range e.Methods {
			b = binary.AppendUvarint(b, tab.ref(string(m.Key)))
			b = binary.AppendUvarint(b, uint64(len(m.Action)))
			for _, slot := range m.Action.SortedSlots() {
				o := m.Action[slot]
				b = binary.AppendUvarint(b, uint64(slot.Kind))
				b = binary.AppendVarint(b, int64(slot.Param))
				b = binary.AppendUvarint(b, tab.ref(slot.Field))
				b = binary.AppendUvarint(b, uint64(o.Kind))
				b = binary.AppendVarint(b, int64(o.Param))
				b = binary.AppendUvarint(b, tab.ref(o.Field))
			}
			b = binary.AppendUvarint(b, uint64(len(m.Calls)))
			for _, c := range m.Calls {
				b = binary.AppendUvarint(b, tab.ref(string(c.Caller)))
				b = binary.AppendUvarint(b, tab.ref(c.CalleeClass))
				b = binary.AppendUvarint(b, tab.ref(c.CalleeSub))
				b = binary.AppendUvarint(b, uint64(c.Kind))
				b = binary.AppendUvarint(b, uint64(len(c.PP)))
				for _, w := range c.PP {
					b = binary.AppendVarint(b, int64(w))
				}
				b = binary.AppendVarint(b, int64(c.StmtIndex))
				if c.Pruned {
					b = append(b, 1)
				} else {
					b = append(b, 0)
				}
			}
		}
	}
	return b
}

func decodeSummaries(pay []byte, tab []string) ([]taint.ConeEntry, error) {
	d := &decoder{buf: pay, section: "sumc"}
	n, err := d.count("cone entry")
	if err != nil {
		return nil, err
	}
	entries := make([]taint.ConeEntry, 0, n)
	for i := 0; i < n; i++ {
		var e taint.ConeEntry
		if e.Fingerprint, err = d.str("cone fingerprint"); err != nil {
			return nil, err
		}
		mn, err := d.count("method summary")
		if err != nil {
			return nil, err
		}
		e.Methods = make([]taint.MethodSummary, 0, mn)
		for j := 0; j < mn; j++ {
			var m taint.MethodSummary
			key, err := d.ref(tab, "summary method key")
			if err != nil {
				return nil, err
			}
			m.Key = java.MethodKey(key)
			an, err := d.count("action slot")
			if err != nil {
				return nil, err
			}
			m.Action = make(taint.Action, an)
			for k := 0; k < an; k++ {
				slot, err := decodeSlot(d, tab)
				if err != nil {
					return nil, err
				}
				origin, err := decodeOrigin(d, tab)
				if err != nil {
					return nil, err
				}
				m.Action[slot] = origin
			}
			cn, err := d.count("call edge")
			if err != nil {
				return nil, err
			}
			if cn > 0 {
				m.Calls = make([]taint.CallEdge, 0, cn)
			}
			for k := 0; k < cn; k++ {
				c, err := decodeCallEdge(d, tab)
				if err != nil {
					return nil, err
				}
				m.Calls = append(m.Calls, c)
			}
			e.Methods = append(e.Methods, m)
		}
		entries = append(entries, e)
	}
	return entries, d.done()
}

func decodeSlot(d *decoder, tab []string) (taint.Slot, error) {
	var s taint.Slot
	kind, err := d.uvarint("slot kind")
	if err != nil {
		return s, err
	}
	param, err := d.varint("slot param")
	if err != nil {
		return s, err
	}
	field, err := d.ref(tab, "slot field")
	if err != nil {
		return s, err
	}
	return taint.Slot{Kind: taint.SlotKind(kind), Param: int(param), Field: field}, nil
}

func decodeOrigin(d *decoder, tab []string) (taint.Origin, error) {
	var o taint.Origin
	kind, err := d.uvarint("origin kind")
	if err != nil {
		return o, err
	}
	param, err := d.varint("origin param")
	if err != nil {
		return o, err
	}
	field, err := d.ref(tab, "origin field")
	if err != nil {
		return o, err
	}
	return taint.Origin{Kind: taint.OriginKind(kind), Param: int(param), Field: field}, nil
}

func decodeCallEdge(d *decoder, tab []string) (taint.CallEdge, error) {
	var c taint.CallEdge
	caller, err := d.ref(tab, "call caller")
	if err != nil {
		return c, err
	}
	c.Caller = java.MethodKey(caller)
	if c.CalleeClass, err = d.ref(tab, "call callee class"); err != nil {
		return c, err
	}
	if c.CalleeSub, err = d.ref(tab, "call callee sub"); err != nil {
		return c, err
	}
	kind, err := d.uvarint("call invoke kind")
	if err != nil {
		return c, err
	}
	c.Kind = jimple.InvokeKind(kind)
	pn, err := d.count("polluted position")
	if err != nil {
		return c, err
	}
	c.PP = make(taint.PP, pn)
	for i := range c.PP {
		w, err := d.varint("polluted position weight")
		if err != nil {
			return c, err
		}
		c.PP[i] = taint.Weight(w)
	}
	idx, err := d.varint("call stmt index")
	if err != nil {
		return c, err
	}
	c.StmtIndex = int(idx)
	pruned, err := d.byte("call pruned flag")
	if err != nil {
		return c, err
	}
	c.Pruned = pruned != 0
	return c, nil
}

// WriteSummaries writes an exported summary cache as a standalone
// "TABBYSUM" file: magic, version, then strs/sumc/fini sections with the
// same CRC-framed layout snapshots use.
func WriteSummaries(w io.Writer, entries []taint.ConeEntry) error {
	tab := newStringTable()
	sumcPay := encodeSummaries(entries, tab)
	sections := map[string][]byte{
		"strs": tab.encode(),
		"sumc": sumcPay,
		"fini": nil,
	}
	hdr := make([]byte, 0, len(summaryMagic)+2)
	hdr = append(hdr, summaryMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, SummaryFormatVersion)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("store: write summary header: %w", err)
	}
	for _, tag := range summaryOrder {
		if err := writeSection(w, tag, sections[tag]); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummariesFile writes the summary cache to path atomically
// (same-directory temp file + fsync + rename, like WriteFile).
func WriteSummariesFile(path string, entries []taint.ConeEntry) error {
	return atomicWriteFile(path, func(f *os.File) error { return WriteSummaries(f, entries) })
}

// ReadSummaries decodes a standalone summary-cache file, verifying magic,
// version, section order and every checksum.
func ReadSummaries(r io.Reader) ([]taint.ConeEntry, error) {
	hdr := make([]byte, len(summaryMagic)+2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("store: read summary header: %w (not a tabby summary cache, or truncated)", err)
	}
	if string(hdr[:len(summaryMagic)]) != summaryMagic {
		return nil, fmt.Errorf("store: bad magic %q: not a tabby summary-cache file", hdr[:len(summaryMagic)])
	}
	version := binary.LittleEndian.Uint16(hdr[len(summaryMagic):])
	if version != SummaryFormatVersion {
		return nil, fmt.Errorf("store: unsupported summary-cache format version %d (this build reads version %d)", version, SummaryFormatVersion)
	}
	payloads := make(map[string][]byte, len(summaryOrder))
	for _, want := range summaryOrder {
		tag, payload, err := readSection(r, summaryOrder)
		if err != nil {
			return nil, err
		}
		if tag != want {
			return nil, fmt.Errorf("store: unexpected section %q (want %q): file corrupted or out of order", tag, want)
		}
		payloads[tag] = payload
	}
	tab, err := decodeStrings(payloads["strs"])
	if err != nil {
		return nil, err
	}
	return decodeSummaries(payloads["sumc"], tab)
}

// ReadSummariesFile loads a standalone summary-cache file from path.
func ReadSummariesFile(path string) ([]taint.ConeEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return ReadSummaries(f)
}
