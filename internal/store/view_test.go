package store

import (
	"bytes"
	"reflect"
	"testing"
	"unsafe"

	"tabby/internal/searchindex"
)

// alignedCopy rehouses snapshot bytes in 8-byte-aligned memory, the
// same guarantee a page-aligned mmap region gives the zero-copy view.
func alignedCopy(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	buf := make([]uint64, (len(data)+7)/8)
	out := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(data))
	copy(out, data)
	return out
}

// TestViewBytesRoundTrip: a freshly written snapshot views zero-copy —
// version, metadata, graph stats, and the compiled index must all match
// what a full decode produces, and the on-demand Snapshot() must equal
// the original.
func TestViewBytesRoundTrip(t *testing.T) {
	snap := buildSnapshot(t)
	data := alignedCopy(encodeSnapshot(t, snap))

	m, err := ViewBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version() != FormatVersion {
		t.Errorf("Version() = %d, want %d", m.Version(), FormatVersion)
	}
	if !m.HasIndex() {
		t.Fatal("current-format snapshot must carry an index section")
	}
	meta, err := m.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(meta, snap.Meta) {
		t.Errorf("meta:\n got %+v\nwant %+v", meta, snap.Meta)
	}

	ix, stats, err := m.Index()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, snap.DB.Stats()) {
		t.Errorf("stats:\n got %+v\nwant %+v", stats, snap.DB.Stats())
	}
	want := searchindex.For(snap.DB)
	if ix.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", ix.NumNodes(), want.NumNodes())
	}
	for v := int32(0); v < int32(want.NumNodes()); v++ {
		if ix.IDOf(v) != want.IDOf(v) || ix.Name(v) != want.Name(v) ||
			ix.IsSink(v) != want.IsSink(v) || ix.SinkType(v) != want.SinkType(v) {
			t.Errorf("node %d differs between viewed and compiled index", v)
		}
	}
	if !reflect.DeepEqual(ix.RelTypes(), want.RelTypes()) {
		t.Fatalf("RelTypes = %v, want %v", ix.RelTypes(), want.RelTypes())
	}
	for _, typ := range want.RelTypes() {
		for v := int32(0); v < int32(want.NumNodes()); v++ {
			if !reflect.DeepEqual(ix.OutNeighbors(typ, v), want.OutNeighbors(typ, v)) ||
				!reflect.DeepEqual(ix.InNeighbors(typ, v), want.InNeighbors(typ, v)) {
				t.Errorf("adjacency %q at %d differs", typ, v)
			}
		}
	}

	full, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Meta, snap.Meta) ||
		!reflect.DeepEqual(full.DB.Export(), snap.DB.Export()) ||
		!reflect.DeepEqual(full.Summaries, snap.Summaries) {
		t.Error("Snapshot() differs from the written snapshot")
	}
}

// TestViewBytesNeverPanicsOnTruncation frames every strict prefix of a
// snapshot: each must error — the framing walk, the trailing-bytes
// check, and the meta/csr3 CRCs leave no prefix that parses.
func TestViewBytesNeverPanicsOnTruncation(t *testing.T) {
	data := alignedCopy(encodeSnapshot(t, buildSnapshot(t)))
	for n := 0; n < len(data); n++ {
		if _, err := ViewBytes(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes viewed successfully", n, len(data))
		}
	}
}

// TestViewBytesNeverServesFlippedBytes flips every byte in turn.
// ViewBytes CRC-checks only the sections it serves zero-copy (meta,
// csr3), so a flip elsewhere may view successfully — but then the full
// decode must catch it: for every flip, ViewBytes errors or Snapshot()
// errors, and a successful view must serve its index without panicking.
func TestViewBytesNeverServesFlippedBytes(t *testing.T) {
	data := encodeSnapshot(t, buildSnapshot(t))
	for i := range data {
		bad := alignedCopy(data)
		bad[i] ^= 0xff
		m, err := ViewBytes(bad)
		if err != nil {
			continue
		}
		// The serving path must stay well-defined on a corrupt-but-viewable
		// file: the flip is outside meta and csr3, so both decode fine.
		if _, err := m.Meta(); err != nil {
			t.Fatalf("flip at %d: Meta() on viewable file: %v", i, err)
		}
		if _, _, err := m.Index(); err != nil {
			t.Fatalf("flip at %d: Index() on viewable file: %v", i, err)
		}
		if _, err := m.Snapshot(); err == nil {
			t.Fatalf("flip at %d/%d: both ViewBytes and Snapshot accepted corrupt bytes", i, len(data))
		}
	}
}

// TestViewBytesPreV3FallsBack: older snapshots view (the framing is
// version-aware) but have no index; Index() errors cleanly and
// Snapshot() remains the serving path.
func TestViewBytesPreV3FallsBack(t *testing.T) {
	data := encodeSnapshot(t, buildSnapshot(t))
	for _, version := range []uint16{1, 2} {
		old := alignedCopy(downgradeTo(t, data, version))
		m, err := ViewBytes(old)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if m.Version() != version {
			t.Errorf("Version() = %d, want %d", m.Version(), version)
		}
		if m.HasIndex() {
			t.Errorf("v%d snapshot claims an index section", version)
		}
		if _, _, err := m.Index(); err == nil {
			t.Errorf("v%d: Index() must error", version)
		}
		if _, err := m.Meta(); err != nil {
			t.Errorf("v%d: Meta(): %v", version, err)
		}
		if _, err := m.Snapshot(); err != nil {
			t.Errorf("v%d: Snapshot(): %v", version, err)
		}
	}
}

// TestReadV2SnapshotBackwardCompat: the version-2 layout (summary cache
// but no index section) still loads with everything intact — written
// snapshots outlive the build that wrote them.
func TestReadV2SnapshotBackwardCompat(t *testing.T) {
	snap := buildSnapshot(t)
	v2 := downgradeTo(t, encodeSnapshot(t, snap), 2)
	got, err := Read(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("reading v2 snapshot: %v", err)
	}
	if !reflect.DeepEqual(got.Meta, snap.Meta) {
		t.Errorf("meta differs after v2 load")
	}
	if !reflect.DeepEqual(got.Summaries, snap.Summaries) {
		t.Errorf("v2 snapshot lost the summary cache")
	}
	if !reflect.DeepEqual(got.DB.Export(), snap.DB.Export()) {
		t.Errorf("graph differs after v2 load")
	}
	// Re-encoding upgrades to the current version — and loads again.
	var buf bytes.Buffer
	if err := Write(&buf, got); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("re-reading upgraded snapshot: %v", err)
	}
}

// TestV2TruncationAndFlips extends the exhaustive corruption suite to
// the synthesized v2 layout: every truncation and every byte flip must
// error, never panic — through both Read and the zero-copy view path.
func TestV2TruncationAndFlips(t *testing.T) {
	v2 := downgradeTo(t, encodeSnapshot(t, buildSnapshot(t)), 2)
	if _, err := Read(bytes.NewReader(v2)); err != nil {
		t.Fatalf("pristine v2 file must read: %v", err)
	}
	for n := 0; n < len(v2); n++ {
		if _, err := Read(bytes.NewReader(v2[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes read successfully", n, len(v2))
		}
		if _, err := ViewBytes(alignedCopy(v2[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes viewed successfully", n, len(v2))
		}
	}
	for i := range v2 {
		bad := alignedCopy(v2)
		bad[i] ^= 0xff
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipping byte %d/%d still read successfully", i, len(v2))
		}
		if m, err := ViewBytes(bad); err == nil {
			if _, err := m.Snapshot(); err == nil {
				t.Fatalf("flipping byte %d/%d still decoded via the view", i, len(v2))
			}
		}
	}
}
