#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the persistence + serving stack:
# build the binaries, snapshot the quickstart (URLDNS) corpus with
# `tabby -save`, boot tabby-server on an ephemeral port, hit every
# endpoint with curl, and diff the responses against the golden file.
# Responses are deterministic (frozen stores, workers pinned to 1), so
# any drift is a real behaviour change.
#
#   scripts/serve_smoke.sh            # verify against the golden
#   scripts/serve_smoke.sh -update    # regenerate the golden
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
server_pid=
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/tabby" ./cmd/tabby
go build -o "$tmp/tabby-server" ./cmd/tabby-server

"$tmp/tabby" -urldns -chains=false -save "$tmp/urldns.tsnap" >/dev/null

"$tmp/tabby-server" -addr 127.0.0.1:0 -workers 1 -snapshot "$tmp/urldns.tsnap" \
    2>"$tmp/server.log" &
server_pid=$!

# The server prints its bound address once it accepts connections.
addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^tabby-server listening on \([^ ]*\) .*$/\1/p' "$tmp/server.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "tabby-server did not start:" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi

out="$tmp/responses.txt"
{
    echo "== GET /v1/graphs"
    curl -sS "http://$addr/v1/graphs"
    echo "== GET /v1/graphs/urldns/stats"
    curl -sS "http://$addr/v1/graphs/urldns/stats"
    echo "== POST /v1/query"
    curl -sS -d '{"graph":"urldns","query":"MATCH (m:Method {IS_SINK: true}) RETURN m.NAME, m.SINK_TYPE LIMIT 5"}' \
        "http://$addr/v1/query"
    echo "== POST /v1/chains"
    curl -sS -d '{"graph":"urldns","workers":1}' "http://$addr/v1/chains"
    echo "== POST /v1/query (error path)"
    curl -sS -d '{"graph":"nope","query":"MATCH (m) RETURN m"}' "http://$addr/v1/query"
    # Analyze timings vary run to run; normalize elapsed_ms away so the
    # rest of the job body stays golden-diffable.
    analyze_req='{"name":"app","wait":true,"workers":1,"files":[{"name":"App.java","source":"public class App implements java.io.Serializable { private void readObject(java.io.ObjectInputStream in) { java.lang.Runtime.getRuntime().exec(\"id\"); } }"}]}'
    echo "== POST /v1/analyze (wait)"
    curl -sS -d "$analyze_req" "http://$addr/v1/analyze" \
        | sed -E 's/,"elapsed_ms":[0-9]+//g'
    echo "== POST /v1/analyze (repeat upload, result cache)"
    curl -sS -d "$analyze_req" "http://$addr/v1/analyze" \
        | sed -E 's/,"elapsed_ms":[0-9]+//g'
    echo "== GET /v1/jobs/j1"
    curl -sS "http://$addr/v1/jobs/j1" \
        | sed -E 's/,"elapsed_ms":[0-9]+//g'
    echo "== GET /v1/jobs"
    curl -sS "http://$addr/v1/jobs" \
        | sed -E 's/,"elapsed_ms":[0-9]+//g'
} >"$out"

golden=scripts/testdata/serve_smoke.golden
if [ "${1:-}" = "-update" ]; then
    cp "$out" "$golden"
    echo "updated $golden"
    exit 0
fi
diff -u "$golden" "$out"
echo "serve-smoke OK"
