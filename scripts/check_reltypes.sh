#!/bin/sh
# check_reltypes.sh — relationship-type exhaustiveness check.
#
# The edge vocabulary lives in internal/edges/edges.go. Every Rel*
# constant declared there must be handled everywhere the schema fans
# out; this script fails `make check` when a newly added relationship
# type misses one of those spots:
#
#   1. the provenanceByRel table in internal/edges/edges.go
#   2. the cpg alias re-exports in internal/cpg/schema.go
#   3. the edge-style switch of the DOT exporter (internal/cpg/dot.go)
#
# The searchindex and the server need no per-type entries (their layouts
# and encoders are rel-type generic), but the server must keep tagging
# chain edges through edges.Provenance — checked last.
set -eu

cd "$(dirname "$0")/.."
fail=0

rels=$(sed -n 's/^\t\(Rel[A-Za-z]*\) *= *"[A-Z_]*"$/\1/p' internal/edges/edges.go)
if [ -z "$rels" ]; then
    echo "check_reltypes: found no Rel* constants in internal/edges/edges.go" >&2
    exit 1
fi

for rel in $rels; do
    if ! grep -q "^[[:space:]]*$rel:[[:space:]]*Prov" internal/edges/edges.go; then
        echo "check_reltypes: $rel has no provenanceByRel entry in internal/edges/edges.go" >&2
        fail=1
    fi
    if ! grep -q "$rel[[:space:]]*= edges.$rel" internal/cpg/schema.go; then
        echo "check_reltypes: $rel is not re-exported by internal/cpg/schema.go" >&2
        fail=1
    fi
    if ! grep -q "case .*$rel" internal/cpg/dot.go; then
        echo "check_reltypes: $rel has no style case in internal/cpg/dot.go WriteDOT" >&2
        fail=1
    fi
done

if ! grep -q "edges.Provenance(" internal/server/server.go; then
    echo "check_reltypes: internal/server no longer tags chain edges via edges.Provenance" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_reltypes: ok ($(echo "$rels" | wc -w | tr -d ' ') relationship types)"
