module tabby

go 1.22
