// Package tabby is a from-scratch Go reproduction of "Tabby: Automated
// Gadget Chain Detection for Java Deserialization Vulnerabilities"
// (DSN 2023).
//
// The root package carries only documentation and the benchmark harness;
// the implementation lives under internal/:
//
//	internal/javasrc      mini-Java frontend (the Soot substitute)
//	internal/jimple       three-address IR + program model
//	internal/cfg          per-method control-flow graphs
//	internal/taint        controllability analysis (Algorithm 1)
//	internal/cpg          code property graph construction (ORG/PCG/MAG)
//	internal/graphdb      embedded property-graph store (the Neo4j substitute)
//	internal/cypher       Cypher-lite query language
//	internal/pathfinder   tabby-path-finder (Algorithms 2–3)
//	internal/core         the end-to-end engine
//	internal/baseline/... GadgetInspector- and Serianalyzer-like baselines
//	internal/corpus       evaluation corpus (components, scenes, synthetics)
//	internal/bench        experiment harness regenerating Tables VIII–XI
//
// See README.md for usage and EXPERIMENTS.md for the paper-vs-measured
// record of every table and figure.
package tabby
